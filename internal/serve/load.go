package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/analysis"
	"dropscope/internal/archive"
	"dropscope/internal/ingest"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// snapshotSource and snapshotFile mirror the facade's warm-start
// accounting so a daemon load reports snapshot health under the same
// source name a batch load does.
const (
	snapshotSource = "ribsnap/index"
	snapshotFile   = "index.ribsnap"
)

// LoadOptions configures Load.
type LoadOptions struct {
	// Window is the study window the generation must cover.
	Window timex.Range
	// MaxSkip is the per-collector skip budget (0 = ingest default,
	// negative = unlimited). Daemon loads are always lenient: a damaged
	// collector quarantines, it does not take the service down.
	MaxSkip int
	// Workers bounds the cold-build RIB loading pool and the sharded
	// index's fan-out pool.
	Workers int
	// SnapshotDir, when non-empty, warm-starts from
	// SnapshotDir/index.ribsnap when it matches the archive digest, and
	// persists a fresh snapshot there after a clean cold build so the
	// next load (a SIGHUP reload, a restart) maps instead of rebuilding.
	SnapshotDir string
	// Store, when non-nil, supersedes SnapshotDir: warm starts load the
	// generation through the manifest-backed store (which refuses
	// generations journaled corrupt and falls back to the legacy
	// index.ribsnap), and clean cold builds are written and promoted
	// through it. This is the daemon path; the bare SnapshotDir path
	// remains for single-owner batch use.
	Store *ribsnap.Store
	// Health, when non-nil, receives the load's ingest accounting
	// instead of a fresh accumulator — the reload supervisor seeds it
	// with the retry count that preceded a successful reload, so the
	// generation's own health report records what it came to be.
	Health *ingest.Health
	// Shards, when > 1, serves a prefix-range sharded index: the frozen
	// index is cut into Shards independently mmap-able pieces. With a
	// Store, clean cold builds persist the sharded generation layout
	// (gen-<digest>/shard-<i>.ribsnap + shards.manifest) and warm starts
	// reload it; without one the cut happens in memory. Query semantics
	// are identical to the single index.
	Shards int
	// MemBudget caps how many shards stay memory-mapped at once for a
	// store-backed sharded generation (<= 0 keeps them all resident).
	// Cold ranges fault back in on demand; the least recently used
	// shard is evicted when the budget is exceeded.
	MemBudget int
	// Delta, when true, lets a load whose snapshot went stale try the
	// incremental append path before rebuilding cold: if the previous
	// generation carries archive cursors and every archive file grew
	// strictly append-only, only the appended bytes are decoded (into
	// an overlay keyed on the frozen base) and merged into the new
	// generation. Any violation — a rewritten file, a corrupt suffix, a
	// base without lineage — silently falls back to the cold rebuild,
	// so the result is always byte-identical to one.
	Delta bool
}

// Load builds one serving generation from the archive directory: warm
// from the snapshot when it matches the archive's MRT digest, cold
// otherwise. A cold build over clean MRT ingest persists the snapshot
// for the next load. The returned generation always carries the archive
// digest — it is the identity every response reports.
func Load(dir string, opts LoadOptions) (*Generation, error) {
	h := opts.Health
	if h == nil {
		h = ingest.NewHealth()
	}
	var (
		snap       *ribsnap.Snapshot
		shards     *ribsnap.ShardSet
		digest     [32]byte
		haveDigest bool
		snapPath   string
		staleErr   error // deferred stale-snapshot skip while the delta path may adopt it
		deltaBuilt bool
	)
	if opts.SnapshotDir != "" {
		snapPath = filepath.Join(opts.SnapshotDir, snapshotFile)
		// Startup sweep for the store-less path (the store sweeps at
		// open): temps orphaned by a crashed write are pure debris.
		_, _ = ribsnap.SweepTemps(opts.SnapshotDir)
	}
	// One read of the archive yields both the generation's identity
	// digest and the lineage cursors a clean cold build will persist
	// (DigestMRT is the same fold; see ribsnap.DigestCursors).
	cursors, curErr := ribsnap.ArchiveCursors(filepath.Join(dir, "mrt"))
	if curErr == nil {
		digest, haveDigest = ribsnap.DigestCursors(cursors), true
		// The sharded layout is tried first: a generation directory with
		// a valid manifest is complete by construction (the manifest is
		// written last), and it is what a sharded daemon wrote on its
		// previous clean build.
		if opts.Store != nil && opts.Shards > 1 && opts.Store.HasShards(digest) {
			ss, lerr := opts.Store.LoadShards(digest, opts.MemBudget)
			switch {
			case lerr != nil:
				countSnapshotSkip(h, lerr)
			case ss.Window() != opts.Window:
				ss.Close()
				h.Source(snapshotSource).Skip(ingest.Unsupported)
			default:
				shards = ss
			}
		}
		if shards == nil {
			var (
				s    *ribsnap.Snapshot
				lerr error
				try  bool
			)
			switch {
			case opts.Store != nil:
				s, lerr = opts.Store.Load(digest)
				try = true
			case snapPath != "":
				s, lerr = ribsnap.Load(snapPath, digest)
				try = true
			}
			if try {
				switch {
				case lerr != nil && opts.Delta && errors.Is(lerr, ribsnap.ErrStale):
					// The archive moved on under an intact snapshot — the
					// delta candidate. Defer the skip accounting: a
					// successful delta serves exactly what a cache-off cold
					// build would, so its health must not record a discard.
					staleErr = lerr
				case lerr != nil:
					countSnapshotSkip(h, lerr)
				case s.Window != opts.Window:
					s.Close()
					h.Source(snapshotSource).Skip(ingest.Unsupported)
				default:
					snap = s
				}
			}
		}
		// A single-file generation under -shards: upgrade it in place.
		// The mapped monolith is already the frozen index, so cut it,
		// persist the sharded layout, and reopen under the residency
		// budget — enabling sharding on an existing deployment takes
		// effect on the first restart, not only after the snapshot is
		// invalidated and cold-rebuilt. Best-effort: any failure keeps
		// serving the single mapping (the in-memory cut below still
		// gives fan-out, just not bounded residency).
		if opts.Shards > 1 && opts.Store != nil && shards == nil && snap != nil {
			if fs, ferr := snap.Index.FrozenShards(opts.Shards, opts.Workers); ferr == nil {
				if werr := opts.Store.WriteShardsLineage(fs, opts.Window, digest, snap.Counts, opts.Workers, snap.Lineage); werr == nil {
					if ss, lerr := opts.Store.LoadShards(digest, opts.MemBudget); lerr == nil {
						shards = ss
					}
				}
			}
			if shards != nil {
				snap.Close()
				snap = nil
			}
		}
		// Incremental append: no generation matched the current digest,
		// but the previous one may cover a byte-prefix of the archive.
		if opts.Delta && snap == nil && shards == nil {
			snap, shards = tryDelta(dir, opts, digest, snapPath, staleErr != nil)
			if snap != nil || shards != nil {
				deltaBuilt = true
				staleErr = nil
			}
		}
		if staleErr != nil {
			countSnapshotSkip(h, staleErr)
		}
	}
	warm := snap != nil || shards != nil

	b, err := archive.LoadWithOptions(dir, archive.LoadOptions{Health: h, SkipMRT: warm})
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		if shards != nil {
			shards.Close()
		}
		return nil, fmt.Errorf("serve: load: %w", err)
	}
	aopts := analysis.Options{
		Workers: opts.Workers,
		Lenient: true,
		MaxSkip: opts.MaxSkip,
		Health:  h,
	}
	switch {
	case shards != nil:
		sh, serr := shards.Sharded(opts.Workers)
		if serr != nil {
			shards.Close()
			return nil, fmt.Errorf("serve: sharded index: %w", serr)
		}
		aopts.Index = sh
		// The master snapshot gives the sharded set the exact snapshot
		// lifecycle a single mapping has: pinned per request, closed on
		// swap, drained by refcount.
		snap = shards.Master()
	case snap != nil:
		aopts.Index = snap.Index
	}
	p, err := analysis.NewWithOptions(analysis.Dataset{
		Window: opts.Window,
		DROP:   b.DROP, SBL: b.SBL, IRR: b.IRR, RPKI: b.RPKI, RIR: b.RIR,
		MRT: b.MRT,
	}, aopts)
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		return nil, fmt.Errorf("serve: pipeline: %w", err)
	}
	if warm {
		// Replay the per-collector record counts the snapshot preserved
		// so /metrics reports what a cold build would.
		for _, c := range snap.Counts {
			h.Source("mrt/" + c.Collector).Accept(c.Records)
		}
	} else {
		if haveDigest {
			if opts.Shards > 1 && opts.Store != nil {
				// Persist the sharded layout and serve the reopened,
				// file-backed shards, so a cold build and the warm start
				// that follows it answer from the identical bytes.
				if ss := persistShards(opts, p, b, h, digest, cursors); ss != nil {
					if sh, serr := ss.Sharded(opts.Workers); serr == nil {
						p.Index = sh
						shards = ss
						snap = ss.Master()
					} else {
						ss.Close()
					}
				}
			} else {
				persistSnapshot(opts, snapPath, p, b, h, digest, cursors)
			}
		}
		if snap == nil {
			// Serve the cold-built index behind a mapping-free snapshot: the
			// generation lifecycle (refcount, Close-on-swap) is identical.
			ix, _ := p.Index.(*rib.Index)
			snap = &ribsnap.Snapshot{Index: ix, Window: opts.Window, Digest: digest}
		}
	}
	// In-memory cut: sharding was requested but the index is still the
	// monolith (store-less cold build, warm single-file start, or a
	// failed sharded persist). Queries then run the same fan-out paths a
	// file-backed sharded generation does, minus the residency budget.
	if opts.Shards > 1 && shards == nil {
		if ix, ok := p.Index.(*rib.Index); ok {
			if fs, ferr := ix.FrozenShards(opts.Shards, opts.Workers); ferr == nil {
				if sh, serr := rib.ShardedFromFrozen(fs, opts.Workers); serr == nil {
					p.Index = sh
				}
			}
		}
	}
	if opts.Store != nil && haveDigest {
		// Journal the generation as live. A failure here is operational
		// (the journal write), not a serving problem — the generation is
		// good; the next promote retries.
		_ = opts.Store.Promote(digest)
	}
	g := newGeneration(snap, shards, p)
	g.deltaBuilt = deltaBuilt
	return g, nil
}

// countSnapshotSkip classifies a discarded snapshot in the health
// accounting, as the batch loader does: a missing snapshot (first run)
// counts nothing; truncation, corruption, version skew, and staleness
// each count one skip.
func countSnapshotSkip(h *ingest.Health, err error) {
	if os.IsNotExist(err) {
		return
	}
	src := h.Source(snapshotSource)
	switch {
	case errors.Is(err, ribsnap.ErrTruncated):
		src.Skip(ingest.Truncated)
	case errors.Is(err, ribsnap.ErrVersion), errors.Is(err, ribsnap.ErrStale):
		src.Skip(ingest.Unsupported)
	default:
		src.Skip(ingest.Corrupt)
	}
}

// mrtClean reports whether every MRT collector ingested without damage
// — the gate on persisting anything: a partial index must never
// masquerade as the archive's.
func mrtClean(h *ingest.Health) bool {
	for _, s := range h.Sources() {
		if strings.HasPrefix(s.Name, "mrt/") && !s.Clean() {
			return false
		}
	}
	return true
}

// collectorCounts flattens the per-collector record counts for the
// snapshot header, sorted by collector name.
func collectorCounts(b *archive.Bundle, h *ingest.Health) []ribsnap.CollectorCount {
	names := make([]string, 0, len(b.MRT))
	for name := range b.MRT {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]ribsnap.CollectorCount, 0, len(names))
	for _, name := range names {
		counts = append(counts, ribsnap.CollectorCount{
			Collector: name,
			Records:   h.Source("mrt/" + name).Records,
		})
	}
	return counts
}

// coldLineage builds the lineage a clean cold build persists: no
// parent, the index's max record day, and the archive cursors from the
// same read that produced the generation's digest — the base state the
// next load's delta path resumes from.
func coldLineage(cursors []ribsnap.ArchiveCursor, f *rib.Frozen) *ribsnap.Lineage {
	return &ribsnap.Lineage{MaxDay: f.MaxDay, Cursors: cursors}
}

// persistSnapshot writes the freshly built index for the next load —
// through the manifest-backed store when one is configured, else to
// the bare snapshot path. Best-effort, and it refuses to persist an
// index built from damaged MRT ingest.
func persistSnapshot(opts LoadOptions, path string, p *analysis.Pipeline, b *archive.Bundle, h *ingest.Health, digest [32]byte, cursors []ribsnap.ArchiveCursor) {
	if opts.Store == nil && path == "" {
		return
	}
	if !mrtClean(h) {
		return
	}
	ix, ok := p.Index.(*rib.Index)
	if !ok {
		return
	}
	f, err := ix.Frozen()
	if err != nil {
		return
	}
	counts := collectorCounts(b, h)
	lin := coldLineage(cursors, f)
	if opts.Store != nil {
		_ = opts.Store.WriteLineage(f, opts.Window, digest, counts, lin)
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	_ = ribsnap.WriteLineage(path, f, opts.Window, digest, counts, lin)
}

// persistShards cuts the cold-built index into opts.Shards prefix
// ranges, writes them through the store as a sharded generation
// directory, and reopens the result under the residency budget. Any
// failure (unclean ingest, a write error) returns nil and the caller
// falls back to an in-memory cut — best-effort, like persistSnapshot.
func persistShards(opts LoadOptions, p *analysis.Pipeline, b *archive.Bundle, h *ingest.Health, digest [32]byte, cursors []ribsnap.ArchiveCursor) *ribsnap.ShardSet {
	if !mrtClean(h) {
		return nil
	}
	ix, ok := p.Index.(*rib.Index)
	if !ok {
		return nil
	}
	fs, err := ix.FrozenShards(opts.Shards, opts.Workers)
	if err != nil {
		return nil
	}
	var lin *ribsnap.Lineage
	if len(fs) > 0 {
		// Lineage is global (cursors span the whole archive), so any
		// shard's MaxDay-bearing frozen works; shard 0 carries the
		// global MaxDay like every other.
		lin = coldLineage(cursors, fs[0])
	}
	if err := opts.Store.WriteShardsLineage(fs, opts.Window, digest, collectorCounts(b, h), opts.Workers, lin); err != nil {
		return nil
	}
	ss, err := opts.Store.LoadShards(digest, opts.MemBudget)
	if err != nil {
		return nil
	}
	return ss
}
