package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dropscope/internal/archive"
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rpki"
	"dropscope/internal/scenario"
	"dropscope/internal/timex"
)

// worldRoot holds the per-seed cached archive directories for the whole
// test run; TestMain removes it.
var (
	worldRoot string
	worldMu   sync.Mutex
	worldDirs = map[int64]string{}
)

func TestMain(m *testing.M) {
	var err error
	worldRoot, err = os.MkdirTemp("", "servetest")
	if err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(worldRoot)
	os.Exit(code)
}

// writeWorld generates a small deterministic world and persists its
// archives, returning the directory and study window. Worlds are cached
// by seed across tests: generation and archive encoding dominate the
// suite's wall clock otherwise.
func writeWorld(t testing.TB, seed int64) (string, timex.Range) {
	t.Helper()
	p := scenario.DefaultParams()
	p.Seed = seed
	p.Scale = 1024
	worldMu.Lock()
	defer worldMu.Unlock()
	if dir, ok := worldDirs[seed]; ok {
		return dir, p.Window
	}
	w, err := scenario.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(worldRoot, fmt.Sprintf("seed%d", seed))
	err = archive.Write(dir, &archive.Bundle{
		MRT: w.MRT, DROP: w.DROP, SBL: w.SBL,
		IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
	})
	if err != nil {
		t.Fatal(err)
	}
	worldDirs[seed] = dir
	return dir, p.Window
}

var (
	genOnce   sync.Once
	cachedGen *Generation
	cachedErr error
)

// loadGen loads one shared read-only generation for the differential
// tests (a cold build without snapshot persistence).
func loadGen(t testing.TB) *Generation {
	t.Helper()
	genOnce.Do(func() {
		dir, window := writeWorld(t, 1)
		cachedGen, cachedErr = Load(dir, LoadOptions{Window: window})
	})
	if cachedErr != nil {
		t.Fatal(cachedErr)
	}
	return cachedGen
}

// sampleDays spreads k probe days across the window, including both
// edges.
func sampleDays(w timex.Range, k int) []timex.Day {
	days := []timex.Day{w.First, w.Last}
	for i := 1; i < k; i++ {
		days = append(days, w.First+timex.Day(i*w.Days()/k))
	}
	return days
}

// TestROVMatchesArchive is the differential guarantee behind /v1/rov:
// the flat span table must reproduce rpki.Archive.ValidateAt for every
// listed-or-announced prefix, across days, origins, and both TAL sets.
func TestROVMatchesArchive(t *testing.T) {
	g := loadGen(t)
	rpkiArch := g.pipe.Dataset().RPKI
	days := sampleDays(g.window, 6)
	as0TALs := append(append([]rpki.TrustAnchor{}, rpki.DefaultTALs...), rpki.TAAPNICAS0, rpki.TALACNICAS0)
	checked := 0
	for i, p := range g.samples {
		if i%7 != 0 { // sample the universe; full cross-product is slow
			continue
		}
		for _, d := range days {
			origin, ok := g.pipe.Index.OriginAt(p, d)
			if !ok {
				origin = bgp.ASN(64500 + i%100)
			}
			for _, or := range []bgp.ASN{origin, origin + 1, bgp.AS0} {
				want := rpkiArch.ValidateAt(p, or, d, rpki.DefaultTALs)
				if got := g.ROV(p, or, d, false); got != want {
					t.Fatalf("ROV(%s, AS%d, %s, as0=false) = %v, want %v", p, or, d, got, want)
				}
				want = rpkiArch.ValidateAt(p, or, d, as0TALs)
				if got := g.ROV(p, or, d, true); got != want {
					t.Fatalf("ROV(%s, AS%d, %s, as0=true) = %v, want %v", p, or, d, got, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no prefixes checked")
	}
}

// TestDropListedMatchesArchive pins /v1/drop to the archive's own
// ListedAt over every listed prefix and a never-listed control.
func TestDropListedMatchesArchive(t *testing.T) {
	g := loadGen(t)
	dropArch := g.pipe.Dataset().DROP
	days := sampleDays(g.window, 8)
	for _, l := range g.pipe.Listings {
		for _, d := range days {
			want := dropArch.ListedAt(l.Prefix, d)
			if got := g.DropListed(l.Prefix, d); got != want {
				t.Fatalf("DropListed(%s, %s) = %v, want %v", l.Prefix, d, got, want)
			}
		}
		// Probe the listing's own boundary days too.
		for _, d := range []timex.Day{l.Added - 1, l.Added, l.Removed - 1, l.Removed} {
			want := dropArch.ListedAt(l.Prefix, d)
			if got := g.DropListed(l.Prefix, d); got != want {
				t.Fatalf("DropListed(%s, %s) = %v, want %v", l.Prefix, d, got, want)
			}
		}
	}
	control := netx.MustParsePrefix("203.0.113.0/24")
	for _, d := range days {
		if g.DropListed(control, d) != dropArch.ListedAt(control, d) {
			t.Fatalf("control prefix disagrees on %s", d)
		}
	}
}

// TestVisibilityMatchesIndex pins /v1/visibility to the index queries.
func TestVisibilityMatchesIndex(t *testing.T) {
	g := loadGen(t)
	days := sampleDays(g.window, 5)
	for i, p := range g.samples {
		if i%13 != 0 {
			continue
		}
		for _, d := range days {
			vis, peers := g.Visibility(p, d)
			if peers != g.pipe.Index.NumPeers() {
				t.Fatalf("peer total %d != %d", peers, g.pipe.Index.NumPeers())
			}
			wantFrac := g.pipe.Index.VisibleFraction(p, d)
			frac := 0.0
			if peers > 0 {
				frac = float64(vis) / float64(peers)
			}
			if frac != wantFrac {
				t.Fatalf("VisibleFraction(%s, %s) = %v via count, index says %v", p, d, frac, wantFrac)
			}
			if (vis > 0) != g.pipe.Index.Observed(p, d) {
				t.Fatalf("Observed(%s, %s) disagrees", p, d)
			}
		}
	}
}

type visResp struct {
	Prefix       string  `json:"prefix"`
	Day          string  `json:"day"`
	PeersVisible int     `json:"peers_visible"`
	PeersTotal   int     `json:"peers_total"`
	Fraction     float64 `json:"visible_fraction"`
	Observed     bool    `json:"observed"`
	Generation   string  `json:"generation"`
}

// get drives one request through ServeHTTP and returns the recorder.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestEndpointsOverHTTP exercises every endpoint end to end: status,
// JSON shape, the generation digest in body and header.
func TestEndpointsOverHTTP(t *testing.T) {
	g := loadGen(t)
	s := New(g)
	p := g.samples[len(g.samples)/2]
	day := g.window.First + timex.Day(g.window.Days()/2)

	w := get(t, s, "/v1/visibility?prefix="+escapePrefix(p)+"&day="+day.String())
	if w.Code != 200 {
		t.Fatalf("visibility status %d: %s", w.Code, w.Body.String())
	}
	var vr visResp
	if err := json.Unmarshal(w.Body.Bytes(), &vr); err != nil {
		t.Fatalf("visibility: %v", err)
	}
	if vr.Prefix != p.String() || vr.Day != day.String() || vr.Generation != g.DigestHex() {
		t.Fatalf("visibility echo mismatch: %+v", vr)
	}
	if got := w.Header().Get("X-Dropscope-Generation"); got != g.DigestHex() {
		t.Fatalf("generation header %q", got)
	}
	if vr.PeersTotal != g.pipe.Index.NumPeers() {
		t.Fatalf("peers_total %d", vr.PeersTotal)
	}

	w = get(t, s, "/v1/rov?prefix="+escapePrefix(p)+"&day="+day.String()+"&origin=64500")
	if w.Code != 200 {
		t.Fatalf("rov status %d: %s", w.Code, w.Body.String())
	}
	var rr struct {
		Validity   string `json:"validity"`
		Origin     uint32 `json:"origin"`
		Generation string `json:"generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if want := g.ROV(p, 64500, day, false).String(); rr.Validity != want {
		t.Fatalf("rov validity %q, want %q", rr.Validity, want)
	}
	if rr.Origin != 64500 || rr.Generation != g.DigestHex() {
		t.Fatalf("rov echo mismatch: %+v", rr)
	}

	w = get(t, s, "/v1/drop?prefix="+escapePrefix(p)+"&day="+day.String())
	if w.Code != 200 {
		t.Fatalf("drop status %d", w.Code)
	}
	var dr struct {
		Listed     bool   `json:"listed"`
		Generation string `json:"generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Listed != g.DropListed(p, day) || dr.Generation != g.DigestHex() {
		t.Fatalf("drop echo mismatch: %+v", dr)
	}

	w = get(t, s, "/v1/origins?prefix="+escapePrefix(p))
	if w.Code != 200 {
		t.Fatalf("origins status %d", w.Code)
	}
	var or struct {
		Spans []struct {
			From    string `json:"from"`
			To      string `json:"to"`
			Origin  uint32 `json:"origin"`
			Transit uint32 `json:"transit"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &or); err != nil {
		t.Fatal(err)
	}
	spans := g.pipe.Index.OriginTimeline(p)
	if len(or.Spans) != len(spans) {
		t.Fatalf("origins: %d spans, want %d", len(or.Spans), len(spans))
	}
	for i, sp := range spans {
		got := or.Spans[i]
		if got.From != sp.From.String() || got.To != sp.To.String() ||
			bgp.ASN(got.Origin) != sp.Origin || bgp.ASN(got.Transit) != sp.Transit {
			t.Fatalf("origins span %d: %+v vs %+v", i, got, sp)
		}
	}

	w = get(t, s, "/v1/figures/"+day.String())
	if w.Code != 200 {
		t.Fatalf("figures status %d: %s", w.Code, w.Body.String())
	}
	var fr struct {
		Day         string  `json:"day"`
		RoutedAddrs uint64  `json:"routed_addrs"`
		Slash8      float64 `json:"routed_slash8"`
		MOAS        int     `json:"moas_conflicts"`
		DropListed  int     `json:"drop_listed"`
		ROAsLive    int     `json:"roas_live"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	f := g.pipe.FigureDay(day)
	if fr.Day != day.String() || fr.RoutedAddrs != f.RoutedAddrs || fr.Slash8 != f.RoutedSlash8 ||
		fr.MOAS != f.MOASConflicts || fr.DropListed != f.DROPListed || fr.ROAsLive != f.ROAsLive {
		t.Fatalf("figures mismatch: %+v vs %+v", fr, f)
	}

	w = get(t, s, "/healthz")
	if w.Code != 200 {
		t.Fatalf("healthz status %d", w.Code)
	}
	var hr struct {
		Status     string `json:"status"`
		Prefixes   int    `json:"prefixes"`
		Generation string `json:"generation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Prefixes != len(g.samples) || hr.Generation != g.DigestHex() {
		t.Fatalf("healthz mismatch: %+v", hr)
	}

	w = get(t, s, "/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics status %d", w.Code)
	}
	var mr struct {
		Requests map[string]uint64 `json:"requests"`
		Total    uint64            `json:"requests_total"`
		Ingest   json.RawMessage   `json:"ingest"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Requests["visibility"] != 1 || mr.Requests["metrics"] != 1 {
		t.Fatalf("metrics counters: %+v", mr.Requests)
	}
	if len(mr.Ingest) == 0 || string(mr.Ingest) == "null" {
		t.Fatal("metrics: no ingest report")
	}
}

// TestROVDerivedOrigin checks the origin-less rov path uses the
// plurality observed origin.
func TestROVDerivedOrigin(t *testing.T) {
	g := loadGen(t)
	s := New(g)
	day := g.window.Last
	var probed bool
	for _, p := range g.samples {
		origin, ok := g.pipe.Index.OriginAt(p, day)
		if !ok {
			continue
		}
		w := get(t, s, "/v1/rov?prefix="+escapePrefix(p))
		if w.Code != 200 {
			t.Fatalf("rov status %d", w.Code)
		}
		var rr struct {
			Origin   uint32 `json:"origin"`
			Validity string `json:"validity"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
			t.Fatal(err)
		}
		if bgp.ASN(rr.Origin) != origin {
			t.Fatalf("derived origin %d, want %d", rr.Origin, origin)
		}
		if want := g.ROV(p, origin, day, false).String(); rr.Validity != want {
			t.Fatalf("validity %q, want %q", rr.Validity, want)
		}
		probed = true
		break
	}
	if !probed {
		t.Fatal("no observed prefix to probe")
	}
}

// TestErrorStatuses locks in the failure-path contract.
func TestErrorStatuses(t *testing.T) {
	g := loadGen(t)
	s := New(g)
	cases := []struct {
		path string
		code int
	}{
		{"/v1/visibility", 400},                                     // missing prefix
		{"/v1/visibility?prefix=bogus", 400},                        // malformed prefix
		{"/v1/visibility?prefix=10.0.0.1%2F24", 400},                // host bits set
		{"/v1/visibility?prefix=10.0.0.0%2F24&day=x", 400},          // malformed day
		{"/v1/visibility?prefix=10.0.0.0%2F24&day=2019-02-30", 400}, // nonsense date
		{"/v1/rov?prefix=198.51.100.0%2F24&origin=zz", 400},         // malformed origin
		{"/v1/rov?prefix=198.51.100.0%2F24", 404},                   // unobserved, no origin
		{"/v1/figures/not-a-day", 400},
		{"/v1/figures/1999-01-01", 404}, // outside the window
		{"/v1/nope", 404},
	}
	for _, c := range cases {
		w := get(t, s, c.path)
		if w.Code != c.code {
			t.Errorf("GET %s = %d, want %d (%s)", c.path, w.Code, c.code, w.Body.String())
		}
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("GET %s: error body %q not JSON", c.path, w.Body.String())
		}
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/visibility", nil))
	if w.Code != 405 {
		t.Errorf("POST = %d, want 405", w.Code)
	}
	empty := New(nil)
	if w := get(t, empty, "/healthz"); w.Code != 503 {
		t.Errorf("no generation: %d, want 503", w.Code)
	}
}

// TestRequestMixDeterministic pins the load driver's reproducibility:
// same seed, same ring.
func TestRequestMixDeterministic(t *testing.T) {
	g := loadGen(t)
	a := RequestMix(g, 42, 256)
	b := RequestMix(g, 42, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := RequestMix(g, 43, 256)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical mixes")
	}
	s := New(g)
	for _, path := range a[:64] {
		if w := get(t, s, path); w.Code != 200 && w.Code != 404 {
			t.Fatalf("mix request %q: status %d: %s", path, w.Code, w.Body.String())
		}
	}
}
