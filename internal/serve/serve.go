package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint indices for the per-endpoint request counters.
const (
	epVisibility = iota
	epROV
	epDrop
	epOrigins
	epFigures
	epHealthz
	epMetrics
	numEndpoints
)

var epNames = [numEndpoints]string{
	"visibility", "rov", "drop", "origins", "figures", "healthz", "metrics",
}

const jsonContentType = "application/json"

// generationHeader carries the serving generation's archive digest on
// every response, so clients can always tell which archive state
// answered them — and notice when a swap landed between two requests.
const generationHeader = "X-Dropscope-Generation"

// Server answers the study's point queries over HTTP from the current
// Generation. The generation pointer is swapped atomically (Swap); each
// request pins the generation it loads via the snapshot refcount, so a
// swap never tears an in-flight query and the retired mapping unmaps
// only after its last reader releases.
//
// The steady-state point-query handlers (visibility, rov, drop) are
// allocation-free: request parsing, the queries themselves, and response
// encoding all run on pooled buffers. (net/http's own connection
// plumbing still allocates; the guarantee covers everything from
// ServeHTTP down, as enforced by TestPointHandlerAllocs.)
type Server struct {
	gen   atomic.Pointer[Generation]
	swaps atomic.Uint64
	errs  atomic.Uint64
	reqs  [numEndpoints]atomic.Uint64
	pool  sync.Pool
	stats *Stats

	// testHook, when set (tests only), runs after the generation is
	// pinned and before routing — the injection point for deliberate
	// panics and stalls in the chaos and deadline suites.
	testHook func(*http.Request)
}

// New builds a server over an initial generation (nil is allowed; every
// request answers 503 until the first Swap).
func New(g *Generation) *Server {
	s := &Server{stats: &Stats{}}
	s.pool.New = func() any {
		return &reqState{body: make([]byte, 0, 4096)}
	}
	if g != nil {
		s.gen.Store(g)
		s.stats.markGeneration(time.Now())
	}
	return s
}

// Stats returns the server's resilience accounting, shared with the
// middleware and reload supervisor.
func (s *Server) Stats() *Stats { return s.stats }

// Generation returns the currently published generation (nil before the
// first one is installed).
func (s *Server) Generation() *Generation { return s.gen.Load() }

// Swaps returns how many generation swaps the server has performed.
func (s *Server) Swaps() uint64 { return s.swaps.Load() }

// Swap atomically publishes next and retires the previous generation:
// new requests land on next immediately, requests already pinned to the
// old generation finish against it, and the old mapping is unmapped by
// whichever of Close/last-Release runs last. The retired generation is
// returned (nil on the first install).
func (s *Server) Swap(next *Generation) *Generation {
	old := s.gen.Swap(next)
	s.swaps.Add(1)
	s.stats.markGeneration(time.Now())
	// Any scrub finding was about the generation just retired; the new
	// one starts clean (and gets its own pass).
	s.stats.SetScrubError("")
	if old != nil {
		old.snap.Close()
	}
	return old
}

// acquire loads the current generation and pins it. A pin can lose the
// race with a concurrent Swap (the loaded generation closed before
// Acquire); the retry then observes the freshly published pointer.
func (s *Server) acquire() *Generation {
	for i := 0; i < 64; i++ {
		g := s.gen.Load()
		if g == nil {
			return nil
		}
		if g.Acquire() == nil {
			return g
		}
	}
	return nil
}

// ServeHTTP routes the query endpoints. Every handler runs with the
// generation pinned for the whole request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g := s.acquire()
	if g == nil {
		s.fail(w, http.StatusServiceUnavailable, "no generation loaded")
		return
	}
	defer g.Release()
	if h := s.testHook; h != nil {
		h(r)
	}
	path := r.URL.Path
	switch {
	case path == "/v1/visibility":
		s.reqs[epVisibility].Add(1)
		s.handleVisibility(w, r, g)
	case path == "/v1/rov":
		s.reqs[epROV].Add(1)
		s.handleROV(w, r, g)
	case path == "/v1/drop":
		s.reqs[epDrop].Add(1)
		s.handleDrop(w, r, g)
	case path == "/v1/origins":
		s.reqs[epOrigins].Add(1)
		s.handleOrigins(w, r, g)
	case strings.HasPrefix(path, "/v1/figures/"):
		s.reqs[epFigures].Add(1)
		s.handleFigures(w, r, g, path[len("/v1/figures/"):])
	case path == "/healthz":
		s.reqs[epHealthz].Add(1)
		s.handleHealthz(w, g)
	case path == "/metrics":
		s.reqs[epMetrics].Add(1)
		s.handleMetrics(w, g)
	default:
		s.fail(w, http.StatusNotFound, "unknown endpoint")
	}
}

// fail emits a JSON error. Error paths are off the steady state and may
// allocate.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errs.Add(1)
	h := w.Header()
	h.Set("Content-Type", jsonContentType)
	w.WriteHeader(code)
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	w.Write(append(body, '\n'))
}

func (s *Server) finish(w http.ResponseWriter, g *Generation, b []byte) {
	h := w.Header()
	setHeader(h, "Content-Type", jsonContentType)
	setHeader(h, generationHeader, g.digestHex)
	w.Write(b)
}

// appendGeneration closes a response object with the generation digest:
// `,"generation":"<hex>"}` plus newline.
func (g *Generation) appendGeneration(b []byte) []byte {
	b = append(b, `,"generation":"`...)
	b = append(b, g.digestHex...)
	return append(b, '"', '}', '\n')
}

// handleVisibility answers GET /v1/visibility?prefix=P[&day=D]: the
// exact-route peer visibility of P on D (default: the window's last
// day). Zero-alloc steady state.
func (s *Server) handleVisibility(w http.ResponseWriter, r *http.Request, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	q := parseParams(r.URL.RawQuery, st)
	if q.bad != "" {
		s.fail(w, http.StatusBadRequest, "bad parameter: "+q.bad)
		return
	}
	if !q.hasPrefix {
		s.fail(w, http.StatusBadRequest, "prefix parameter required")
		return
	}
	d := q.day
	if !q.hasDay {
		d = g.window.Last
	}
	visible, peers := g.Visibility(q.prefix, d)
	frac := 0.0
	if peers > 0 {
		frac = float64(visible) / float64(peers)
	}
	b := st.body[:0]
	b = append(b, `{"prefix":"`...)
	b = appendPrefix(b, q.prefix)
	b = append(b, `","day":"`...)
	b = appendDay(b, d)
	b = append(b, `","peers_visible":`...)
	b = strconv.AppendInt(b, int64(visible), 10)
	b = append(b, `,"peers_total":`...)
	b = strconv.AppendInt(b, int64(peers), 10)
	b = append(b, `,"visible_fraction":`...)
	b = appendFloat(b, frac)
	b = append(b, `,"observed":`...)
	b = appendBool(b, visible > 0)
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleROV answers GET /v1/rov?prefix=P[&origin=AS][&day=D][&as0=1]:
// the RFC 6811 outcome for (P, origin) against the ROAs live on D under
// the default production TALs (as0=1 adds the informational AS0 TALs).
// With no origin given, the plurality observed origin on D is used —
// that derivation allocates; the explicit-origin path is zero-alloc.
func (s *Server) handleROV(w http.ResponseWriter, r *http.Request, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	q := parseParams(r.URL.RawQuery, st)
	if q.bad != "" {
		s.fail(w, http.StatusBadRequest, "bad parameter: "+q.bad)
		return
	}
	if !q.hasPrefix {
		s.fail(w, http.StatusBadRequest, "prefix parameter required")
		return
	}
	d := q.day
	if !q.hasDay {
		d = g.window.Last
	}
	origin := q.origin
	if !q.hasOrigin {
		var ok bool
		origin, ok = g.pipe.Index.OriginAt(q.prefix, d)
		if !ok {
			s.fail(w, http.StatusNotFound, "prefix not observed on day; pass origin explicitly")
			return
		}
	}
	v := g.ROV(q.prefix, origin, d, q.as0)
	b := st.body[:0]
	b = append(b, `{"prefix":"`...)
	b = appendPrefix(b, q.prefix)
	b = append(b, `","day":"`...)
	b = appendDay(b, d)
	b = append(b, `","origin":`...)
	b = strconv.AppendUint(b, uint64(origin), 10)
	b = append(b, `,"validity":"`...)
	b = append(b, v.String()...)
	b = append(b, `","as0_tals":`...)
	b = appendBool(b, q.as0)
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleDrop answers GET /v1/drop?prefix=P[&day=D]: whether P was on
// the DROP list effective on D. Zero-alloc steady state.
func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	q := parseParams(r.URL.RawQuery, st)
	if q.bad != "" {
		s.fail(w, http.StatusBadRequest, "bad parameter: "+q.bad)
		return
	}
	if !q.hasPrefix {
		s.fail(w, http.StatusBadRequest, "prefix parameter required")
		return
	}
	d := q.day
	if !q.hasDay {
		d = g.window.Last
	}
	b := st.body[:0]
	b = append(b, `{"prefix":"`...)
	b = appendPrefix(b, q.prefix)
	b = append(b, `","day":"`...)
	b = appendDay(b, d)
	b = append(b, `","listed":`...)
	b = appendBool(b, g.DropListed(q.prefix, d))
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleOrigins answers GET /v1/origins?prefix=P: the merged
// origination timeline of P across all peers. The timeline query
// allocates (it sorts and merges spans); the response is still built on
// the pooled buffer.
func (s *Server) handleOrigins(w http.ResponseWriter, r *http.Request, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	q := parseParams(r.URL.RawQuery, st)
	if q.bad != "" {
		s.fail(w, http.StatusBadRequest, "bad parameter: "+q.bad)
		return
	}
	if !q.hasPrefix {
		s.fail(w, http.StatusBadRequest, "prefix parameter required")
		return
	}
	spans := g.pipe.Index.OriginTimeline(q.prefix)
	b := st.body[:0]
	b = append(b, `{"prefix":"`...)
	b = appendPrefix(b, q.prefix)
	b = append(b, `","spans":[`...)
	for i, sp := range spans {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"from":"`...)
		b = appendDay(b, sp.From)
		b = append(b, `","to":"`...)
		b = appendDay(b, sp.To)
		b = append(b, `","origin":`...)
		b = strconv.AppendUint(b, uint64(sp.Origin), 10)
		b = append(b, `,"transit":`...)
		b = strconv.AppendUint(b, uint64(sp.Transit), 10)
		b = append(b, '}')
	}
	b = append(b, ']')
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleFigures answers GET /v1/figures/{day}: the per-day study cut
// (routed space, MOAS conflicts, DROP pressure, live ROAs). The sweeps
// behind it are memoized per day in the pipeline's query cache.
func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request, g *Generation, daypath string) {
	d, ok := parseDayBytes([]byte(daypath))
	if !ok {
		s.fail(w, http.StatusBadRequest, "bad day in path; want /v1/figures/YYYY-MM-DD")
		return
	}
	if !g.window.Contains(d) {
		s.fail(w, http.StatusNotFound, "day outside the study window")
		return
	}
	f := g.pipe.FigureDay(d)
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	b := st.body[:0]
	b = append(b, `{"day":"`...)
	b = appendDay(b, f.Day)
	b = append(b, `","routed_addrs":`...)
	b = strconv.AppendUint(b, f.RoutedAddrs, 10)
	b = append(b, `,"routed_slash8":`...)
	b = appendFloat(b, f.RoutedSlash8)
	b = append(b, `,"moas_conflicts":`...)
	b = strconv.AppendInt(b, int64(f.MOASConflicts), 10)
	b = append(b, `,"drop_listed":`...)
	b = strconv.AppendInt(b, int64(f.DROPListed), 10)
	b = append(b, `,"drop_listed_addrs":`...)
	b = strconv.AppendUint(b, f.DROPListedAddrs, 10)
	b = append(b, `,"roas_live":`...)
	b = strconv.AppendInt(b, int64(f.ROAsLive), 10)
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleHealthz reports liveness plus the serving generation and its
// shape — the digest here is what the swap acceptance checks watch.
// Degraded mode (reloads to the next generation failing while this one
// keeps serving) is surfaced here, still with status 200: stale but
// available is healthy by the daemon's availability contract, and a
// load balancer must not eject an instance for it.
func (s *Server) handleHealthz(w http.ResponseWriter, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	degraded := s.stats.Degraded.Load()
	b := st.body[:0]
	if degraded {
		b = append(b, `{"status":"degraded"`...)
	} else {
		b = append(b, `{"status":"ok"`...)
	}
	b = append(b, `,"degraded":`...)
	b = appendBool(b, degraded)
	b = append(b, `,"window_first":"`...)
	b = appendDay(b, g.window.First)
	b = append(b, `","window_last":"`...)
	b = appendDay(b, g.window.Last)
	b = append(b, `","prefixes":`...)
	b = strconv.AppendInt(b, int64(len(g.samples)), 10)
	b = append(b, `,"peers":`...)
	b = strconv.AppendInt(b, int64(g.pipe.Index.NumPeers()), 10)
	if ss := g.shards; ss != nil {
		// Per-shard state: a scrub finding degrades one prefix range, and
		// this is where an operator sees which one.
		b = append(b, `,"shards":`...)
		b = strconv.AppendInt(b, int64(ss.NumShards()), 10)
		b = append(b, `,"resident_shards":`...)
		b = strconv.AppendInt(b, int64(ss.Resident()), 10)
		b = append(b, `,"shard_resident":[`...)
		for i, r := range ss.ResidentShards() {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendBool(b, r)
		}
		b = append(b, `],"shard_degraded":[`...)
		for i, bad := range ss.BadShards() {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendBool(b, bad)
		}
		b = append(b, ']')
	}
	b = append(b, `,"swaps":`...)
	b = strconv.AppendUint(b, s.swaps.Load(), 10)
	b = append(b, `,"generation_age_seconds":`...)
	b = appendFloat(b, s.stats.GenerationAge(time.Now()).Seconds())
	if msg := s.stats.ReloadError(); degraded && msg != "" {
		b = append(b, `,"reload_error":`...)
		quoted, _ := json.Marshal(msg)
		b = append(b, quoted...)
	}
	if msg := s.stats.ScrubError(); msg != "" {
		b = append(b, `,"scrub_error":`...)
		quoted, _ := json.Marshal(msg)
		b = append(b, quoted...)
	}
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}

// handleMetrics reports the per-endpoint request counters and the
// ingest health accounting of the serving generation.
func (s *Server) handleMetrics(w http.ResponseWriter, g *Generation) {
	st := s.pool.Get().(*reqState)
	defer s.pool.Put(st)
	var total uint64
	b := st.body[:0]
	b = append(b, `{"requests":{`...)
	for i := 0; i < numEndpoints; i++ {
		n := s.reqs[i].Load()
		total += n
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, epNames[i]...)
		b = append(b, `":`...)
		b = strconv.AppendUint(b, n, 10)
	}
	b = append(b, `},"requests_total":`...)
	b = strconv.AppendUint(b, total, 10)
	b = append(b, `,"errors":`...)
	b = strconv.AppendUint(b, s.errs.Load(), 10)
	b = append(b, `,"swaps":`...)
	b = strconv.AppendUint(b, s.swaps.Load(), 10)
	b = append(b, `,"inflight":`...)
	b = strconv.AppendInt(b, s.stats.Inflight.Load(), 10)
	b = append(b, `,"queued":`...)
	b = strconv.AppendInt(b, s.stats.Queued.Load(), 10)
	b = append(b, `,"shed_total":`...)
	b = strconv.AppendUint(b, s.stats.Shed.Load(), 10)
	b = append(b, `,"panics_total":`...)
	b = strconv.AppendUint(b, s.stats.Panics.Load(), 10)
	b = append(b, `,"reload_retries":`...)
	b = strconv.AppendUint(b, s.stats.ReloadRetries.Load(), 10)
	b = append(b, `,"delta_reloads_total":`...)
	b = strconv.AppendUint(b, s.stats.DeltaReloads.Load(), 10)
	b = append(b, `,"scrub_passes":`...)
	b = strconv.AppendUint(b, s.stats.ScrubPasses.Load(), 10)
	b = append(b, `,"scrub_bytes":`...)
	b = strconv.AppendUint(b, s.stats.ScrubBytes.Load(), 10)
	b = append(b, `,"corrupt_total":`...)
	b = strconv.AppendUint(b, s.stats.CorruptTotal.Load(), 10)
	// Shard residency: all zero for a single-file generation, so the
	// metric schema is stable across layouts.
	b = append(b, `,"shards":`...)
	if ss := g.shards; ss != nil {
		b = strconv.AppendInt(b, int64(ss.NumShards()), 10)
		b = append(b, `,"resident_shards":`...)
		b = strconv.AppendInt(b, int64(ss.Resident()), 10)
		b = append(b, `,"shard_faults_total":`...)
		b = strconv.AppendInt(b, ss.Faults(), 10)
		b = append(b, `,"shard_evictions_total":`...)
		b = strconv.AppendInt(b, ss.Evictions(), 10)
	} else {
		b = append(b, `0,"resident_shards":0,"shard_faults_total":0,"shard_evictions_total":0`...)
	}
	b = append(b, `,"degraded":`...)
	if s.stats.Degraded.Load() {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	b = append(b, `,"generation_age_seconds":`...)
	b = appendFloat(b, s.stats.GenerationAge(time.Now()).Seconds())
	b = append(b, `,"ingest":`...)
	health := g.pipe.HealthReport()
	health.Sources = append(health.Sources, s.stats.sourceReport())
	rep, err := json.Marshal(health)
	if err != nil {
		rep = []byte("null")
	}
	b = append(b, rep...)
	b = g.appendGeneration(b)
	st.body = b[:0]
	s.finish(w, g, b)
}
