package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"strconv"
	"time"

	"dropscope/internal/ingest"
	"dropscope/internal/session"
)

// Reloader is the self-healing generation-reload supervisor: triggers
// (SIGHUP, or a change noticed by the archive watch poll) start a
// reload cycle that retries failed loads under jittered backoff with a
// restart budget, reusing internal/session's Supervisor. While a cycle
// is failing the daemon is *degraded* — it keeps answering from the
// generation it has (stale but available, surfaced in /healthz and
// /metrics) and never goes down because an archive build was broken.
// A cycle whose budget exhausts gives up until the next trigger or
// watch tick, so a later repaired archive still heals the daemon.
type Reloader struct {
	srv   *Server
	cfg   ReloadConfig
	clock session.Clock
	stats *Stats
	// trigger carries at most one pending reload request; concurrent
	// triggers during a running cycle coalesce into one follow-up.
	trigger chan struct{}
	// load is serve.Load, swappable by tests.
	load func(string, LoadOptions) (*Generation, error)
	// stamp is the archive fingerprint of the last load attempt the
	// watcher knows about; only the Run goroutine touches it.
	stamp uint64
}

// ReloadConfig parameterizes a Reloader. The zero Backoff/Budget take
// supervision defaults tuned for reloads: 1s..30s doubling with 20%
// jitter, 8 attempts per 5-minute window.
type ReloadConfig struct {
	// Dir is the archive directory to reload.
	Dir string
	// Opts is the load configuration (window, skip budget, snapshot
	// dir). Opts.Health is overwritten per attempt.
	Opts LoadOptions
	// Backoff shapes the retry waits inside a cycle.
	Backoff session.Backoff
	// Budget caps failed attempts per BudgetWindow inside one cycle;
	// past it the cycle abandons until the next trigger. 0 means 8.
	Budget int
	// BudgetWindow is the sliding budget window; 0 means 5 minutes.
	BudgetWindow time.Duration
	// Watch, when positive, polls the archive directory at this
	// interval and triggers a reload when its contents change (and
	// retries while degraded, so a transiently broken load self-heals
	// without an operator SIGHUP). 0 disables the watcher.
	Watch time.Duration
	// Clock drives backoff waits and the watch poll; nil = real clock.
	Clock session.Clock
	// Seed feeds the deterministic backoff jitter.
	Seed uint64
	// OnEvent, when non-nil, observes reload lifecycle messages.
	OnEvent func(string)
}

// NewReloader builds a reloader over srv, sharing its Stats.
func NewReloader(srv *Server, cfg ReloadConfig) *Reloader {
	if cfg.Clock == nil {
		cfg.Clock = session.Real()
	}
	if cfg.Backoff == (session.Backoff{}) {
		cfg.Backoff = session.Backoff{
			Min:    time.Second,
			Max:    30 * time.Second,
			Jitter: 0.2,
		}
	}
	if cfg.Budget == 0 {
		cfg.Budget = 8
	}
	if cfg.BudgetWindow <= 0 {
		cfg.BudgetWindow = 5 * time.Minute
	}
	r := &Reloader{
		srv:     srv,
		cfg:     cfg,
		clock:   cfg.Clock,
		stats:   srv.stats,
		trigger: make(chan struct{}, 1),
		load:    Load,
	}
	r.stamp = archiveStamp(cfg.Dir)
	return r
}

// Trigger requests a reload cycle (the SIGHUP entry point). It never
// blocks; triggers arriving while a cycle runs coalesce into one.
func (r *Reloader) Trigger() {
	select {
	case r.trigger <- struct{}{}:
	default:
	}
}

// Run services triggers and the watch poll until ctx ends. It is the
// single goroutine that loads and swaps generations.
func (r *Reloader) Run(ctx context.Context) error {
	var watchC <-chan time.Time
	var watchT session.Timer
	if r.cfg.Watch > 0 {
		watchT = r.clock.NewTimer(r.cfg.Watch)
		watchC = watchT.C()
		defer watchT.Stop()
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.trigger:
			r.stamp = archiveStamp(r.cfg.Dir)
			r.cycle(ctx)
		case <-watchC:
			if stamp := archiveStamp(r.cfg.Dir); stamp != r.stamp || r.stats.Degraded.Load() {
				r.stamp = stamp
				r.cycle(ctx)
			}
			watchT.Reset(r.cfg.Watch)
		}
	}
}

// cycle runs one supervised reload: load-and-swap, retried under
// backoff until it succeeds, the budget exhausts, or ctx ends. The
// daemon is degraded from the first failure until a success.
func (r *Reloader) cycle(ctx context.Context) {
	retries := 0
	sup := session.New("reload", func(context.Context) error {
		h := ingest.NewHealth()
		src := h.Source("serve/reload")
		for i := 0; i < retries; i++ {
			src.CountReloadRetry()
		}
		opts := r.cfg.Opts
		opts.Health = h
		t0 := time.Now()
		g, err := r.load(r.cfg.Dir, opts)
		if err != nil {
			retries++
			r.stats.ReloadRetries.Add(1)
			r.stats.Degraded.Store(true)
			r.stats.SetReloadError(err.Error())
			return err
		}
		if g.DeltaBuilt() {
			// Counted before the swap publishes the generation, so a
			// reader that observes the new generation also observes the
			// incremented counter.
			r.stats.DeltaReloads.Add(1)
		}
		r.srv.Swap(g)
		r.stats.Degraded.Store(false)
		r.stats.SetReloadError("")
		how := "swapped in"
		if g.DeltaBuilt() {
			how = "delta-merged in"
		}
		r.event(fmt.Sprintf("reload: %s generation %s in %v (attempt %d)",
			how, g.DigestHex()[:12], time.Since(t0).Round(time.Millisecond), retries+1))
		return nil
	}, session.Config{
		Backoff:     r.cfg.Backoff,
		Budget:      r.cfg.Budget,
		Window:      r.cfg.BudgetWindow,
		StableAfter: r.cfg.BudgetWindow,
		Clock:       r.clock,
		Seed:        r.cfg.Seed,
		OnRetry: func(e session.Event) {
			r.event(fmt.Sprintf("reload: attempt %d failed (%v), retrying in %v; serving stale generation",
				e.Attempt, e.Err, e.Wait.Round(time.Millisecond)))
		},
	})
	if err := sup.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		if errors.Is(err, session.ErrBudgetExhausted) {
			r.event(fmt.Sprintf(
				"reload: budget exhausted after %d attempts; staying degraded on the current generation until the next trigger", retries))
		}
		// Degraded stays set: the watcher (or the next SIGHUP) owns
		// recovery from here.
	}
}

func (r *Reloader) event(msg string) {
	if r.cfg.OnEvent != nil {
		r.cfg.OnEvent(msg)
	}
}

// archiveStamp fingerprints an archive directory by walking it and
// hashing every entry's path, size, and mtime — cheap enough to poll,
// sensitive to any file added, removed, resized, or rewritten. Errors
// hash in as their message, so a directory flickering in and out of
// existence reads as change, not silence. A symlinked archive root is
// resolved first, so the "flip a symlink to the new build" deployment
// pattern reads as a change too.
func archiveStamp(dir string) uint64 {
	h := fnv.New64a()
	if resolved, rerr := filepath.EvalSymlinks(dir); rerr == nil {
		h.Write([]byte(resolved))
		h.Write([]byte{0})
		dir = resolved
	}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			fmt.Fprintf(h, "err:%s:%v\n", path, err)
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			fmt.Fprintf(h, "err:%s:%v\n", path, ierr)
			return nil
		}
		h.Write([]byte(path))
		h.Write([]byte{0})
		h.Write([]byte(strconv.FormatInt(info.Size(), 10)))
		h.Write([]byte{0})
		h.Write([]byte(strconv.FormatInt(info.ModTime().UnixNano(), 10)))
		h.Write([]byte{0})
		return nil
	})
	if err != nil {
		fmt.Fprintf(h, "walk:%v\n", err)
	}
	return h.Sum64()
}
