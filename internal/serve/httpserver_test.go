package serve

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestHTTPConfigDefaults pins the timeout policy: zero fields take the
// documented defaults, negatives disable.
func TestHTTPConfigDefaults(t *testing.T) {
	s := NewHTTPServer(http.NotFoundHandler(), HTTPConfig{})
	if s.ReadHeaderTimeout != 5*time.Second || s.ReadTimeout != 30*time.Second ||
		s.WriteTimeout != 30*time.Second || s.IdleTimeout != 120*time.Second {
		t.Fatalf("defaults: %v/%v/%v/%v",
			s.ReadHeaderTimeout, s.ReadTimeout, s.WriteTimeout, s.IdleTimeout)
	}
	s = NewHTTPServer(http.NotFoundHandler(), HTTPConfig{
		ReadHeaderTimeout: -1, ReadTimeout: time.Second,
		WriteTimeout: -1, IdleTimeout: -1,
	})
	if s.ReadHeaderTimeout != 0 || s.ReadTimeout != time.Second ||
		s.WriteTimeout != 0 || s.IdleTimeout != 0 {
		t.Fatalf("overrides: %v/%v/%v/%v",
			s.ReadHeaderTimeout, s.ReadTimeout, s.WriteTimeout, s.IdleTimeout)
	}
}

// TestSlowlorisCut is the slowloris-resistance check: a client that
// opens a connection and dribbles (or never finishes) its request
// headers is cut at ReadHeaderTimeout — the connection reads EOF well
// inside the test bound instead of pinning a goroutine forever.
func TestSlowlorisCut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}), HTTPConfig{ReadHeaderTimeout: 150 * time.Millisecond})
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: a request line, one header, never the final CRLF.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	t0 := time.Now()
	_, rerr := io.ReadAll(conn)
	elapsed := time.Since(t0)
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never closed the half-open connection (read timed out after %v)", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("connection held %v; ReadHeaderTimeout is 150ms", elapsed)
	}

	// A well-formed request on a fresh connection still works.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := io.ReadAll(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 {
		t.Fatal("no response to a well-formed request")
	}
}
