package serve

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dropscope/internal/ingest/faultinject"
)

// chaosListener wraps every accepted connection with the next scheduled
// fault — the serving-side mirror of the chaos dialer the live-session
// soak uses.
type chaosListener struct {
	net.Listener
	chaos *faultinject.Chaoser
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.chaos.Wrap(conn), nil
}

// TestChaosSoakServe is the serving-layer chaos soak: concurrent
// clients hammer the daemon through a listener that injects connection
// faults (resets, stalls, partial writes, read truncation), while
// generations swap underneath and deliberate panics fire. The
// invariants, checked continuously and at the end:
//
//   - every admitted (200) response is byte-identical to the
//     single-generation render of the generation that answered it;
//   - panicking requests answer 500, never kill the daemon;
//   - shed stays bounded — chaos must not collapse the gate;
//   - every retired generation drains to refcount zero;
//   - no goroutines leak once the soak winds down.
//
// Run under -race (scripts/check.sh soak) this is the PR 7 acceptance
// test for the whole robustness stack.
func TestChaosSoakServe(t *testing.T) {
	dirA, dirB, window := swapWorlds(t)
	baseline := runtime.NumGoroutine()

	refA := loadDir(t, dirA, window)
	refB := loadDir(t, dirB, window)
	paths := []string{
		"/v1/visibility?prefix=" + escapePrefix(refA.samples[0]) + "&day=" + window.First.String(),
		"/v1/visibility?prefix=" + escapePrefix(refA.samples[len(refA.samples)/2]) + "&day=" + window.Last.String(),
		"/v1/rov?prefix=" + escapePrefix(refA.samples[1]) + "&origin=64500&day=" + window.Last.String(),
		"/v1/rov?prefix=" + escapePrefix(refA.samples[2]) + "&origin=0&day=" + window.First.String(),
		"/v1/drop?prefix=" + escapePrefix(refA.samples[3]) + "&day=" + window.Last.String(),
	}
	expect := map[string]map[string][]byte{
		refA.DigestHex(): make(map[string][]byte),
		refB.DigestHex(): make(map[string][]byte),
	}
	for _, p := range paths {
		expect[refA.DigestHex()][p] = render(t, refA, p)
		expect[refB.DigestHex()][p] = render(t, refB, p)
	}

	srv := New(loadDir(t, dirA, window))
	m := Wrap(srv, MiddlewareConfig{
		Gate: GateConfig{MaxInflight: 4, MaxQueue: 8, QueueWait: 200 * time.Millisecond},
	})
	srv.testHook = func(r *http.Request) {
		if r.URL.Path == "/v1/panic" {
			panic("soak panic")
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.NewChaoser(0x50a7, faultinject.ChaosConfig{
		MinBytes: 64, MaxBytes: 4096, Stall: 5 * time.Millisecond,
	}, 48)
	httpSrv := NewHTTPServer(m, HTTPConfig{})
	go httpSrv.Serve(&chaosListener{Listener: ln, chaos: chaos})
	base := "http://" + ln.Addr().String()

	const (
		clients = 8
		soakFor = 1500 * time.Millisecond
		swaps   = 6
	)
	// Preload the swap sequence so the soak wall clock races swaps, not
	// archive loads.
	nexts := make([]*Generation, swaps)
	for i := range nexts {
		dir := dirB
		if i%2 == 1 {
			dir = dirA
		}
		nexts[i] = loadDir(t, dir, window)
	}

	var (
		served     atomic.Uint64 // 200, byte-verified
		shed       atomic.Uint64 // 503
		panicked   atomic.Uint64 // 500 from the panic path
		chaosErrs  atomic.Uint64 // transport-level failures (injected faults)
		mismatches atomic.Uint64
		wg         sync.WaitGroup
	)
	deadline := time.Now().Add(soakFor)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
			for n := c; time.Now().Before(deadline); n++ {
				path := paths[n%len(paths)]
				if n%37 == 0 {
					path = "/v1/panic"
				}
				resp, err := client.Get(base + path)
				if err != nil {
					chaosErrs.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					chaosErrs.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					gen := resp.Header.Get(generationHeader)
					want, ok := expect[gen][path]
					if !ok {
						t.Errorf("response from unknown generation %q", gen)
						mismatches.Add(1)
						continue
					}
					if !bytes.Equal(body, want) {
						t.Errorf("%s from %s: body differs from single-generation render\ngot:  %s\nwant: %s",
							path, gen[:12], body, want)
						mismatches.Add(1)
						continue
					}
					served.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
				case http.StatusInternalServerError:
					if path != "/v1/panic" {
						t.Errorf("unexpected 500 for %s: %s", path, body)
					}
					panicked.Add(1)
				default:
					t.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
				}
			}
		}(c)
	}

	retired := make([]*Generation, 0, swaps)
	for _, next := range nexts {
		time.Sleep(soakFor / (swaps + 1))
		retired = append(retired, srv.Swap(next))
	}
	wg.Wait()

	total := served.Load() + shed.Load() + panicked.Load() + chaosErrs.Load()
	t.Logf("soak: %d total — %d served, %d shed, %d panicked, %d chaos faults (injector wrapped %d conns)",
		total, served.Load(), shed.Load(), panicked.Load(), chaosErrs.Load(), chaos.Injected())
	if served.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	if mismatches.Load() != 0 {
		t.Fatalf("%d byte-identity violations", mismatches.Load())
	}
	if chaos.Injected() == 0 {
		t.Fatal("chaos injected nothing; the soak exercised no faults")
	}
	// Bounded shed: with 8 clients against 4+8 slots and microsecond
	// handlers, admission pressure exists but must not dominate.
	if rate := float64(shed.Load()) / float64(total); rate > 0.5 {
		t.Fatalf("shed rate %.2f exceeds bound 0.5", rate)
	}
	if panicked.Load() == 0 {
		t.Fatal("panic path never exercised")
	}

	drainRetired(t, retired)

	httpSrv.Close()
	settleGoroutines(t, baseline)
}
