package serve

import (
	"context"
	"time"
)

// Gate is the admission controller in front of the query handlers: at
// most MaxInflight requests execute at once, at most MaxQueue more wait
// (briefly) for a slot, and everything past that is shed immediately
// with 503 so the daemon's p99 for admitted requests stays flat while
// offered load grows. Both bounds are plain buffered channels; the
// uncontended path is a single non-blocking channel send and never
// allocates, which keeps the point-query handlers at 0 allocs/op with
// the gate installed.
type Gate struct {
	sem   chan struct{} // inflight slots
	queue chan struct{} // waiter slots
	wait  time.Duration // max time a queued request waits for a slot
	stats *Stats
}

// GateConfig bounds the gate. Zero values take the defaults: 256
// in-flight, a queue the same depth, and a 100ms queue wait — short by
// design; a request that cannot start promptly is better shed than
// served late.
type GateConfig struct {
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	return c
}

// NewGate builds a gate reporting occupancy into stats (which must not
// be nil).
func NewGate(cfg GateConfig, stats *Stats) *Gate {
	cfg = cfg.withDefaults()
	return &Gate{
		sem:   make(chan struct{}, cfg.MaxInflight),
		queue: make(chan struct{}, cfg.MaxQueue),
		wait:  cfg.QueueWait,
		stats: stats,
	}
}

// Enter tries to admit one request. It returns true with a slot held —
// the caller must Leave exactly once — or false when the request should
// be shed. The fast path (a free slot) is one non-blocking send; only a
// request that actually queues pays for a timer.
func (g *Gate) Enter(ctx context.Context) bool {
	select {
	case g.sem <- struct{}{}:
		g.stats.Inflight.Add(1)
		return true
	default:
	}
	// Saturated: claim a bounded queue slot or shed on the spot.
	select {
	case g.queue <- struct{}{}:
	default:
		return false
	}
	g.stats.Queued.Add(1)
	t := time.NewTimer(g.wait)
	defer func() {
		t.Stop()
		g.stats.Queued.Add(-1)
		<-g.queue
	}()
	select {
	case g.sem <- struct{}{}:
		g.stats.Inflight.Add(1)
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// MaxInflight reports the gate's inflight capacity.
func (g *Gate) MaxInflight() int { return cap(g.sem) }

// Leave releases the slot claimed by a successful Enter.
func (g *Gate) Leave() {
	g.stats.Inflight.Add(-1)
	<-g.sem
}
