package serve

import (
	"net/http"
	"time"
)

// HTTPConfig carries the four http.Server timeouts the daemon must
// never run without. Zero values take the defaults; negative values
// disable the corresponding timeout (tests only — a production daemon
// with a disabled ReadHeaderTimeout is one slow client away from
// connection exhaustion).
type HTTPConfig struct {
	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers — the classic slowloris hold. Default 5s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds the whole request read. Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds the whole response write, and is the
	// backstop deadline for every handler. Default 30s.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// between requests. Default 120s.
	IdleTimeout time.Duration
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	pick := func(d *time.Duration, def time.Duration) {
		switch {
		case *d == 0:
			*d = def
		case *d < 0:
			*d = 0
		}
	}
	pick(&c.ReadHeaderTimeout, 5*time.Second)
	pick(&c.ReadTimeout, 30*time.Second)
	pick(&c.WriteTimeout, 30*time.Second)
	pick(&c.IdleTimeout, 120*time.Second)
	return c
}

// NewHTTPServer returns an http.Server over h with every timeout set.
// The bare &http.Server{Handler: h} construction is banned from the
// daemon: without ReadHeaderTimeout a single adversarial client holding
// its request open pins a connection (and its goroutine) forever.
func NewHTTPServer(h http.Handler, cfg HTTPConfig) *http.Server {
	cfg = cfg.withDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		IdleTimeout:       cfg.IdleTimeout,
	}
}
