package serve

import (
	"net/http"
	"strconv"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// reqState is the pooled per-request scratch: the response body under
// construction and a small buffer percent-decoded query values land in.
// One reqState serves one request at a time; the pool recycles them so
// steady-state point queries allocate nothing.
type reqState struct {
	body    []byte
	scratch [64]byte
}

// params is the decoded point-query parameter set. bad names the first
// malformed parameter ("" when the query parsed).
type params struct {
	prefix    netx.Prefix
	hasPrefix bool
	day       timex.Day
	hasDay    bool
	origin    bgp.ASN
	hasOrigin bool
	as0       bool
	bad       string
}

// parseParams scans a raw query string without allocating: values are
// percent-decoded into st.scratch and parsed to values in place.
// Unknown keys are ignored.
func parseParams(raw string, st *reqState) params {
	var q params
	for len(raw) > 0 {
		var kv string
		if i := indexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			kv, raw = raw, ""
		}
		eq := indexByte(kv, '=')
		if eq < 0 {
			continue
		}
		k, v := kv[:eq], kv[eq+1:]
		val, ok := unescape(st.scratch[:0], v)
		if !ok {
			q.bad = k
			return q
		}
		switch k {
		case "prefix":
			q.prefix, ok = parsePrefixBytes(val)
			q.hasPrefix = ok
		case "day":
			q.day, ok = parseDayBytes(val)
			q.hasDay = ok
		case "origin":
			q.origin, ok = parseASNBytes(val)
			q.hasOrigin = ok
		case "as0":
			q.as0, ok = parseBoolBytes(val)
		default:
			continue
		}
		if !ok {
			q.bad = k
			return q
		}
	}
	return q
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// unescape percent-decodes s into dst ('+' decodes to space). It
// reports false on a malformed or over-long escape sequence.
func unescape(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		if len(dst) == cap(dst) {
			return nil, false
		}
		switch c := s[i]; c {
		case '%':
			if i+2 >= len(s) {
				return nil, false
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return nil, false
			}
			dst = append(dst, hi<<4|lo)
			i += 2
		case '+':
			dst = append(dst, ' ')
		default:
			dst = append(dst, c)
		}
	}
	return dst, true
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// parsePrefixBytes parses "a.b.c.d/len" with netx.ParsePrefix semantics
// (host bits below the mask must be zero) from bytes, allocation-free.
func parsePrefixBytes(b []byte) (netx.Prefix, bool) {
	slash := -1
	for i := 0; i < len(b); i++ {
		if b[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return netx.Prefix{}, false
	}
	var addr uint32
	part, val := 0, -1
	for _, c := range b[:slash] {
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return netx.Prefix{}, false
			}
		case c == '.':
			if val < 0 || part == 3 {
				return netx.Prefix{}, false
			}
			addr = addr<<8 | uint32(val)
			val, part = -1, part+1
		default:
			return netx.Prefix{}, false
		}
	}
	if part != 3 || val < 0 {
		return netx.Prefix{}, false
	}
	addr = addr<<8 | uint32(val)
	bits, ok := parseUint(b[slash+1:], 32)
	if !ok {
		return netx.Prefix{}, false
	}
	p := netx.PrefixFrom(netx.Addr(addr), int(bits))
	if p.Addr() != netx.Addr(addr) { // host bits were set
		return netx.Prefix{}, false
	}
	return p, true
}

// parseDayBytes parses "YYYY-MM-DD" or "YYYYMMDD". The round-trip check
// through Date rejects normalized nonsense dates like February 30.
func parseDayBytes(b []byte) (timex.Day, bool) {
	var y, m, dd uint64
	var ok bool
	switch len(b) {
	case 10:
		if b[4] != '-' || b[7] != '-' {
			return 0, false
		}
		if y, ok = parseUint(b[:4], 9999); !ok {
			return 0, false
		}
		if m, ok = parseUint(b[5:7], 12); !ok {
			return 0, false
		}
		dd, ok = parseUint(b[8:], 31)
	case 8:
		if y, ok = parseUint(b[:4], 9999); !ok {
			return 0, false
		}
		if m, ok = parseUint(b[4:6], 12); !ok {
			return 0, false
		}
		dd, ok = parseUint(b[6:], 31)
	default:
		return 0, false
	}
	if !ok || m == 0 || dd == 0 {
		return 0, false
	}
	d := timex.DateDay(int(y), time.Month(m), int(dd))
	ry, rm, rd := d.Date()
	if ry != int(y) || rm != time.Month(m) || rd != int(dd) {
		return 0, false
	}
	return d, true
}

// parseASNBytes parses a decimal AS number, with an optional "AS"/"as"
// prefix.
func parseASNBytes(b []byte) (bgp.ASN, bool) {
	if len(b) >= 2 && (b[0] == 'A' || b[0] == 'a') && (b[1] == 'S' || b[1] == 's') {
		b = b[2:]
	}
	n, ok := parseUint(b, 1<<32-1)
	return bgp.ASN(n), ok
}

func parseBoolBytes(b []byte) (bool, bool) {
	switch string(b) { // compiler-recognized: no allocation in a switch
	case "1", "true":
		return true, true
	case "0", "false", "":
		return false, true
	}
	return false, false
}

func parseUint(b []byte, max uint64) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > max {
			return 0, false
		}
	}
	return n, true
}

// appendPrefix renders p as "a.b.c.d/len".
func appendPrefix(b []byte, p netx.Prefix) []byte {
	o1, o2, o3, o4 := p.Addr().Octets()
	b = strconv.AppendUint(b, uint64(o1), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o2), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o3), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(o4), 10)
	b = append(b, '/')
	return strconv.AppendUint(b, uint64(p.Bits()), 10)
}

// appendDay renders d as "YYYY-MM-DD" (years 1000-9999, the study's
// working range).
func appendDay(b []byte, d timex.Day) []byte {
	y, m, dd := d.Date()
	return append(b,
		byte('0'+y/1000%10), byte('0'+y/100%10), byte('0'+y/10%10), byte('0'+y%10), '-',
		byte('0'+int(m)/10), byte('0'+int(m)%10), '-',
		byte('0'+dd/10), byte('0'+dd%10))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// setHeader sets a single-valued header without allocating when the
// header was set on this map before: http.Header.Set always allocates a
// fresh one-element slice, so we mutate the existing slice in place. The
// first set on a fresh map still allocates; a pooled or reused
// ResponseWriter (and the steady-state alloc guarantee) relies on the
// in-place path.
func setHeader(h http.Header, k, v string) {
	if vs, ok := h[k]; ok && len(vs) == 1 {
		vs[0] = v
		return
	}
	h[k] = []string{v}
}
