package serve

import (
	"net/http"
	"net/url"
	"testing"
)

// nullWriter is a reusable non-allocating http.ResponseWriter: the
// header map persists across requests (so the in-place setHeader path
// engages) and writes are counted, not stored. It isolates the
// handlers' own allocation behavior from net/http's connection
// plumbing, which the zero-alloc guarantee explicitly excludes.
type nullWriter struct {
	header  http.Header
	status  int
	written int
}

func (w *nullWriter) Header() http.Header { return w.header }
func (w *nullWriter) WriteHeader(c int)   { w.status = c }
func (w *nullWriter) Write(b []byte) (int, error) {
	w.written += len(b)
	return len(b), nil
}

// TestPointHandlerAllocs is the PR 6 allocation gate: the steady-state
// point-query handlers — visibility, rov with explicit origin, drop —
// must run ServeHTTP end to end (routing, parsing, query, encoding)
// without a single heap allocation. Since PR 7 the requests run through
// the full robustness middleware (panic recovery, drain check, the
// admission gate), so the gate's uncontended fast path is pinned
// allocation-free too. Skipped under -race like the other allocation
// guards: instrumentation perturbs the counts.
func TestPointHandlerAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	g := loadGen(t)
	s := Wrap(New(g), MiddlewareConfig{})
	p := escapePrefix(g.samples[len(g.samples)/2])
	day := g.window.Last.String()

	cases := []struct {
		name string
		path string
	}{
		{"visibility", "/v1/visibility?prefix=" + p + "&day=" + day},
		{"rov", "/v1/rov?prefix=" + p + "&day=" + day + "&origin=64500&as0=1"},
		{"drop", "/v1/drop?prefix=" + p + "&day=" + day},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u, err := url.Parse(c.path)
			if err != nil {
				t.Fatal(err)
			}
			// One long-lived request and writer, as a keep-alive
			// connection's handler sees them.
			req := &http.Request{Method: http.MethodGet, URL: u}
			w := &nullWriter{header: make(http.Header)}
			avg := testing.AllocsPerRun(200, func() {
				w.written = 0
				s.ServeHTTP(w, req)
				if w.written == 0 {
					t.Fatal("handler wrote nothing")
				}
			})
			if avg != 0 {
				t.Errorf("%s: %v allocs/op, want 0", c.name, avg)
			}
		})
	}
}
