package serve

import (
	"net/http"
	"net/url"
	"testing"
)

// BenchmarkServe measures the point-query handlers through ServeHTTP —
// routing, raw-query parsing, the index/table lookups, and JSON
// encoding — on a reusable writer, i.e. the work the daemon does per
// request beyond net/http's connection handling. The point-query
// sub-benchmarks must report 0 allocs/op (TestPointHandlerAllocs
// enforces it).
func BenchmarkServe(b *testing.B) {
	g := loadGen(b)
	s := New(g)
	p := escapePrefix(g.samples[len(g.samples)/2])
	day := g.window.Last.String()

	cases := []struct {
		name string
		path string
	}{
		{"visibility", "/v1/visibility?prefix=" + p + "&day=" + day},
		{"rov", "/v1/rov?prefix=" + p + "&day=" + day + "&origin=64500"},
		{"drop", "/v1/drop?prefix=" + p + "&day=" + day},
		{"healthz", "/healthz"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			u, err := url.Parse(c.path)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				req := &http.Request{Method: http.MethodGet, URL: u}
				w := &nullWriter{header: make(http.Header)}
				for pb.Next() {
					s.ServeHTTP(w, req)
				}
			})
		})
	}
}
