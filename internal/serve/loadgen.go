package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// splitmix64 steps the deterministic request-mix generator — the same
// PRNG discipline the fault-injection harness uses, so a load run is
// reproducible from its seed alone.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e91b
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RequestMix builds a deterministic ring of n request paths over the
// generation's own prefix universe and window: a wrk-style mix weighted
// toward the zero-alloc point queries (visibility 50%, rov 25%, drop
// 15%), with origins, figures, and healthz filling the tail. Prefixes
// are percent-encoded so the driver also exercises the server's
// unescaper.
func RequestMix(g *Generation, seed uint64, n int) []string {
	state := seed
	days := g.window.Days()
	if days < 1 {
		days = 1
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := g.samples[splitmix64(&state)%uint64(len(g.samples))]
		d := g.window.First + timex.Day(splitmix64(&state)%uint64(days))
		var path string
		switch r := splitmix64(&state) % 100; {
		case r < 50:
			path = fmt.Sprintf("/v1/visibility?prefix=%s&day=%s", escapePrefix(p), d)
		case r < 75:
			// Half the rov requests pin an origin (the zero-alloc path),
			// half derive the observed origin — but only where one exists,
			// or the mix would bake in 404s.
			_, observed := g.pipe.Index.OriginAt(p, d)
			if !observed || splitmix64(&state)%2 == 0 {
				path = fmt.Sprintf("/v1/rov?prefix=%s&day=%s&origin=%d",
					escapePrefix(p), d, splitmix64(&state)%70000)
			} else {
				path = fmt.Sprintf("/v1/rov?prefix=%s&day=%s", escapePrefix(p), d)
			}
		case r < 90:
			path = fmt.Sprintf("/v1/drop?prefix=%s&day=%s", escapePrefix(p), d)
		case r < 95:
			path = fmt.Sprintf("/v1/origins?prefix=%s", escapePrefix(p))
		case r < 99:
			path = fmt.Sprintf("/v1/figures/%s", d)
		default:
			path = "/healthz"
		}
		paths = append(paths, path)
	}
	return paths
}

// escapePrefix percent-encodes the slash in a prefix for a query value.
func escapePrefix(p netx.Prefix) string {
	s := p.String()
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i] + "%2F" + s[i+1:]
		}
	}
	return s
}

// RunOptions configures RunLoad.
type RunOptions struct {
	// Clients is the number of concurrent request loops (default 8).
	Clients int
	// Duration is how long each client drives requests (default 2s).
	Duration time.Duration
	// AllowShed treats 503 responses as load shedding rather than
	// errors — the overload mode, where the driver deliberately offers
	// more concurrency than the admission gate admits. Shed responses
	// are counted separately and excluded from the latency
	// percentiles, so P99us reads "p99 of admitted requests".
	AllowShed bool
}

// LoadResult is the load run's summary, JSON-shaped for the committed
// BENCH_PR6.json / BENCH_PR7.json baselines and the CI serve and soak
// gates. QPS and the percentiles cover admitted (200) requests; Shed
// counts 503 rejections in overload runs.
type LoadResult struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Shed     uint64  `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P90us    float64 `json:"p90_us"`
	P99us    float64 `json:"p99_us"`
	Maxus    float64 `json:"max_us"`
}

// RunLoad drives the request ring against baseURL from opts.Clients
// concurrent loops for opts.Duration and aggregates QPS and latency
// percentiles. Client i starts at a distinct offset into the ring, so
// the overall mix is stable regardless of client count.
func RunLoad(baseURL string, paths []string, opts RunOptions) (LoadResult, error) {
	if len(paths) == 0 {
		return LoadResult{}, fmt.Errorf("serve: empty request ring")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	dur := opts.Duration
	if dur <= 0 {
		dur = 2 * time.Second
	}
	tr := &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	lats := make([][]int64, clients)
	errs := make([]uint64, clients)
	sheds := make([]uint64, clients)
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			i := c * len(paths) / clients
			for time.Now().Before(deadline) {
				path := paths[i]
				i++
				if i == len(paths) {
					i = 0
				}
				t0 := time.Now()
				resp, err := client.Get(baseURL + path)
				if err != nil {
					errs[c]++
					errOnce.Do(func() { firstErr = err })
					continue
				}
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						break
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					if opts.AllowShed && resp.StatusCode == http.StatusServiceUnavailable {
						sheds[c]++
						continue
					}
					errs[c]++
					errOnce.Do(func() {
						firstErr = fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
					})
					continue
				}
				lats[c] = append(lats[c], time.Since(t0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []int64
	var res LoadResult
	for c := 0; c < clients; c++ {
		all = append(all, lats[c]...)
		res.Errors += errs[c]
		res.Shed += sheds[c]
	}
	res.Requests = uint64(len(all)) + res.Errors + res.Shed
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	res.Seconds = elapsed
	if elapsed > 0 {
		res.QPS = float64(len(all)) / elapsed
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50us = float64(all[len(all)*50/100]) / 1e3
		res.P90us = float64(all[len(all)*90/100]) / 1e3
		res.P99us = float64(all[len(all)*99/100]) / 1e3
		res.Maxus = float64(all[len(all)-1]) / 1e3
	}
	if res.Errors > 0 {
		return res, fmt.Errorf("serve: %d request errors (first: %w)", res.Errors, firstErr)
	}
	return res, nil
}
