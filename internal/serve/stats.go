package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"dropscope/internal/ingest"
)

// Stats is the serving layer's shared resilience accounting: the
// admission gate, panic-recovery middleware, reload supervisor, and
// the /healthz and /metrics renderers all read and write one Stats.
// Every field is atomic, so the zero-alloc handlers touch it freely.
// Unlike the per-generation ingest health (which is rebuilt on every
// swap), Stats spans the daemon's whole lifetime.
type Stats struct {
	Inflight atomic.Int64  // requests currently executing
	Queued   atomic.Int64  // requests waiting for an inflight slot
	Shed     atomic.Uint64 // requests rejected 503 by admission or drain
	Panics   atomic.Uint64 // handler panics contained by the middleware

	ReloadRetries atomic.Uint64 // failed reload attempts retried under backoff
	DeltaReloads  atomic.Uint64 // generations installed via the incremental append path
	Degraded      atomic.Bool   // serving stale: the last reload cycle is failing
	genBorn       atomic.Int64  // unix nanos when the current generation was published

	ScrubPasses  atomic.Uint64 // completed background verification passes
	ScrubBytes   atomic.Uint64 // payload bytes re-verified by the scrubber
	CorruptTotal atomic.Uint64 // corruption events detected on the live generation

	mu            sync.Mutex
	lastReloadErr string
	lastScrubErr  string
}

// markGeneration records a freshly published generation; /healthz and
// /metrics report the age relative to it.
func (st *Stats) markGeneration(now time.Time) { st.genBorn.Store(now.UnixNano()) }

// GenerationAge returns how long the current generation has been
// serving (zero before the first install).
func (st *Stats) GenerationAge(now time.Time) time.Duration {
	born := st.genBorn.Load()
	if born == 0 {
		return 0
	}
	return now.Sub(time.Unix(0, born))
}

// SetReloadError records the most recent reload failure for /healthz
// ("" clears it on success).
func (st *Stats) SetReloadError(msg string) {
	st.mu.Lock()
	st.lastReloadErr = msg
	st.mu.Unlock()
}

// ReloadError returns the most recent reload failure message.
func (st *Stats) ReloadError() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastReloadErr
}

// SetScrubError records the most recent scrub corruption finding for
// /healthz ("" clears it — a fresh generation swapped in).
func (st *Stats) SetScrubError(msg string) {
	st.mu.Lock()
	st.lastScrubErr = msg
	st.mu.Unlock()
}

// ScrubError returns the most recent scrub corruption finding.
func (st *Stats) ScrubError() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastScrubErr
}

// sourceReport flattens the serving counters into an ingest-style
// source report, so /metrics folds the HTTP layer into the same health
// listing the loaders use.
func (st *Stats) sourceReport() ingest.SourceReport {
	return ingest.SourceReport{
		Name:          "serve/http",
		Coverage:      1,
		Shed:          st.Shed.Load(),
		Panics:        st.Panics.Load(),
		ReloadRetries: st.ReloadRetries.Load(),
	}
}
