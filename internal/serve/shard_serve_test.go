package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// shardedFixture loads the seed-1 world twice through one store with
// -shards semantics: the first load cold-builds and persists the
// sharded generation, the second maps it warm. Both are returned along
// with the store and options.
func shardedFixture(t *testing.T, k, memBudget int) (*Generation, *ribsnap.Store, string, LoadOptions) {
	t.Helper()
	dir, window := writeWorld(t, 1)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store, Shards: k, MemBudget: memBudget}
	cold, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Shards() == nil {
		t.Fatal("cold sharded load did not produce a shard set")
	}
	cold.snap.Close()
	warm, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Shards() == nil {
		t.Fatal("warm load did not adopt the persisted sharded generation")
	}
	if got := warm.Shards().NumShards(); got != k {
		t.Fatalf("warm shard count = %d, want %d", got, k)
	}
	return warm, store, dir, opts
}

// queryPaths is the endpoint mix the byte-identity checks replay: for
// each sample prefix, visibility, ROV, DROP membership, and the origin
// timeline, across several days.
func queryPaths(g *Generation) []string {
	var paths []string
	days := []timex.Day{g.window.First, g.window.First + timex.Day(g.window.Days()/2), g.window.Last}
	step := len(g.samples)/24 + 1
	for i := 0; i < len(g.samples); i += step {
		p := escapePrefix(g.samples[i])
		for _, d := range days {
			paths = append(paths,
				"/v1/visibility?prefix="+p+"&day="+d.String(),
				"/v1/rov?prefix="+p+"&day="+d.String(),
				"/v1/drop?prefix="+p+"&day="+d.String(),
			)
		}
		paths = append(paths, "/v1/origins?prefix="+p)
	}
	paths = append(paths,
		"/v1/figures/"+g.window.First.String(),
		"/v1/figures/"+(g.window.First+timex.Day(g.window.Days()/2)).String(),
	)
	return paths
}

// TestShardedServeByteIdentity is the serving half of the sharding
// contract: a generation served through a 7-way sharded, memory-capped
// shard set answers every endpoint byte-for-byte identically to the
// unsharded cold build of the same archive — cold (just persisted) and
// warm (mapped back from the store).
func TestShardedServeByteIdentity(t *testing.T) {
	ref := New(loadGen(t))
	warm, _, _, _ := shardedFixture(t, 7, 4)
	sharded := New(warm)

	for _, path := range queryPaths(warm) {
		a := get(t, ref, path)
		b := get(t, sharded, path)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Fatalf("%s diverges: unsharded %d %q, sharded %d %q",
				path, a.Code, a.Body.String(), b.Code, b.Body.String())
		}
	}
}

// TestShardedMetricsAndHealth checks the observability surface: the
// metrics schema is stable (shard fields always present, zero when
// unsharded) and /healthz carries per-shard residency and degradation
// only when sharded.
func TestShardedMetricsAndHealth(t *testing.T) {
	ref := New(loadGen(t))
	warm, _, _, _ := shardedFixture(t, 7, 4)
	sharded := New(warm)

	m := get(t, ref, "/metrics").Body.String()
	for _, want := range []string{`"shards":0`, `"resident_shards":0`, `"shard_faults_total":0`, `"shard_evictions_total":0`} {
		if !strings.Contains(m, want) {
			t.Fatalf("unsharded /metrics missing %s:\n%s", want, m)
		}
	}
	m = get(t, sharded, "/metrics").Body.String()
	if !strings.Contains(m, `"shards":7`) {
		t.Fatalf("sharded /metrics missing shards=7:\n%s", m)
	}
	for _, want := range []string{`"resident_shards":`, `"shard_faults_total":`, `"shard_evictions_total":`} {
		if !strings.Contains(m, want) {
			t.Fatalf("sharded /metrics missing %s:\n%s", want, m)
		}
	}

	h := get(t, ref, "/healthz").Body.String()
	if strings.Contains(h, "shard_resident") {
		t.Fatalf("unsharded /healthz leaks shard fields:\n%s", h)
	}
	h = get(t, sharded, "/healthz").Body.String()
	for _, want := range []string{`"shards":7`, `"shard_resident":[`, `"shard_degraded":[`} {
		if !strings.Contains(h, want) {
			t.Fatalf("sharded /healthz missing %s:\n%s", want, h)
		}
	}
	if !strings.Contains(h, `"shard_degraded":[false,false,false,false,false,false,false]`) {
		t.Fatalf("healthy shard set reports degradation:\n%s", h)
	}
}

// TestShardScrubDegradesOneRange corrupts one shard file on disk and
// lets the scrubber find it: only that shard is quarantined — /healthz
// flags exactly one degraded shard, queries on the other ranges keep
// answering — and the pass still completes over the remaining shards.
func TestShardScrubDegradesOneRange(t *testing.T) {
	warm, store, _, _ := shardedFixture(t, 4, 0)
	srv := New(warm)

	// Flip a payload byte in shard 2's file. The mapped copy is
	// untouched; the scrubber reads the disk bytes.
	path := warm.Shards().ShardPath(2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	sc := NewScrubber(srv, ScrubConfig{
		Chunk:        1 << 16,
		Interval:     time.Millisecond,
		PassInterval: 2 * time.Millisecond,
		Store:        store,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); sc.Run(ctx) }()

	stats := srv.Stats()
	waitFor(t, "scrub to find the damaged shard", func() bool { return stats.CorruptTotal.Load() >= 1 })
	waitFor(t, "the pass to finish the healthy shards", func() bool { return stats.ScrubPasses.Load() >= 1 })
	cancel()
	<-done

	ss := warm.Shards()
	for i := 0; i < ss.NumShards(); i++ {
		if got, want := ss.IsBad(i), i == 2; got != want {
			t.Fatalf("shard %d bad = %v, want %v (%v)", i, got, want, ss.BadShards())
		}
	}
	h := get(t, srv, "/healthz").Body.String()
	if !strings.Contains(h, `"shard_degraded":[false,false,true,false]`) {
		t.Fatalf("/healthz does not isolate the degraded shard:\n%s", h)
	}
	if st := store.Status(warm.snap.Digest); st != ribsnap.GenCorrupt {
		t.Fatalf("generation status = %v, want corrupt", st)
	}

	// Ranges owned by healthy shards keep serving. Sample prefixes
	// whose owning shard is not 2 via the sharded router.
	sh, err := ss.Sharded(2)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, p := range warm.samples {
		if owner := sh.ShardFor(p); owner == 2 {
			continue
		}
		w := get(t, srv, "/v1/visibility?prefix="+escapePrefix(p)+"&day="+warm.window.First.String())
		if w.Code != 200 {
			t.Fatalf("healthy-range query failed %d: %s", w.Code, w.Body.String())
		}
		served++
	}
	if served == 0 {
		t.Fatal("no sample prefix fell outside the damaged shard")
	}
}

// TestShardUpgradeFromSingleFile covers enabling -shards on an
// existing deployment: the store already holds a single-file
// generation from an unsharded run, and the first sharded load must
// upgrade it in place — cut the mapped monolith, persist the sharded
// layout, and serve under the residency budget — rather than fall back
// to an in-memory cut with no budget and no per-shard observability.
func TestShardUpgradeFromSingleFile(t *testing.T) {
	dir, window := writeWorld(t, 1)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Load(dir, LoadOptions{Window: window, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if single.Shards() != nil {
		t.Fatal("unsharded load produced a shard set")
	}
	baseline := New(single)
	paths := queryPaths(single)
	type resp struct {
		code int
		body string
	}
	want := make(map[string]resp, len(paths))
	for _, p := range paths {
		w := get(t, baseline, p)
		want[p] = resp{w.Code, w.Body.String()}
	}
	single.snap.Close()

	upgraded, err := Load(dir, LoadOptions{Window: window, Store: store, Shards: 5, MemBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer upgraded.snap.Close()
	ss := upgraded.Shards()
	if ss == nil {
		t.Fatal("sharded load over a single-file generation did not upgrade to a shard set")
	}
	if got := ss.NumShards(); got != 5 {
		t.Fatalf("NumShards = %d, want 5", got)
	}
	if r := ss.Resident(); r > 2 {
		t.Fatalf("resident = %d, budget 2", r)
	}
	s := New(upgraded)
	for _, p := range paths {
		w := get(t, s, p)
		if w.Code != want[p].code || w.Body.String() != want[p].body {
			t.Fatalf("upgraded %s: code %d vs %d, body diverges from single-file baseline", p, w.Code, want[p].code)
		}
	}

	// The upgrade persisted: a fresh load maps the sharded generation
	// directly.
	warm, err := Load(dir, LoadOptions{Window: window, Store: store, Shards: 5, MemBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.snap.Close()
	if warm.Shards() == nil || warm.Shards().NumShards() != 5 {
		t.Fatal("restart after upgrade did not map the persisted sharded generation")
	}
}
