package serve

import (
	"path/filepath"

	"dropscope/internal/delta"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// deltaBase bundles everything delta.Build needs from the previous
// generation, plus a close func releasing whatever mappings back it.
// The close must not run until the merged index has been persisted:
// the merged Frozen aliases the base's storage.
type deltaBase struct {
	frozen *rib.Frozen
	lin    *ribsnap.Lineage
	counts []ribsnap.CollectorCount
	window timex.Range
	parent [32]byte
	close  func()
}

// tryDelta attempts the incremental append path: adopt the previous
// generation as a base, replay only the bytes appended to the archive
// since it was snapshotted, merge, persist the result as the new
// generation, and reload it from disk. It returns the freshly loaded
// artifacts (exactly what a warm start of the new generation would
// hold), or (nil, nil) when the delta cannot be taken — no eligible
// base, a rewritten (non-append-only) archive, a decode error in the
// suffix, or a persist failure — and the caller rebuilds cold. Like
// the warm path, delta ingest may cost time, never correctness.
func tryDelta(dir string, opts LoadOptions, digest [32]byte, snapPath string, stale bool) (*ribsnap.Snapshot, *ribsnap.ShardSet) {
	base := openDeltaBase(opts, digest, snapPath, stale)
	if base == nil {
		return nil, nil
	}
	res, err := delta.Build(filepath.Join(dir, "mrt"), base.frozen, base.lin,
		base.counts, base.window, opts.Window, base.parent)
	if err != nil {
		base.close()
		return nil, nil
	}
	// Persist the merged generation, then release the base and reload
	// from disk — the served mapping must never alias a retired one.
	if opts.Shards > 1 && opts.Store != nil {
		ix, err := rib.FromFrozen(res.Frozen)
		if err != nil {
			base.close()
			return nil, nil
		}
		fs, err := ix.FrozenShards(opts.Shards, opts.Workers)
		if err != nil {
			base.close()
			return nil, nil
		}
		werr := opts.Store.WriteShardsLineage(fs, opts.Window, digest, res.Counts, opts.Workers, res.Lineage)
		base.close()
		if werr != nil {
			return nil, nil
		}
		ss, lerr := opts.Store.LoadShards(digest, opts.MemBudget)
		if lerr != nil {
			return nil, nil
		}
		return nil, ss
	}
	var werr error
	if opts.Store != nil {
		werr = opts.Store.WriteLineage(res.Frozen, opts.Window, digest, res.Counts, res.Lineage)
	} else {
		werr = ribsnap.WriteLineage(snapPath, res.Frozen, opts.Window, digest, res.Counts, res.Lineage)
	}
	base.close()
	if werr != nil {
		return nil, nil
	}
	var (
		s    *ribsnap.Snapshot
		lerr error
	)
	if opts.Store != nil {
		s, lerr = opts.Store.Load(digest)
	} else {
		s, lerr = ribsnap.Load(snapPath, digest)
	}
	if lerr != nil {
		return nil, nil
	}
	return s, nil
}

// openDeltaBase locates and maps the previous generation. With a
// store, the manifest's promoted generation is the base (sharded or
// single-file); without one, the stale single-file snapshot the warm
// try just rejected is re-adopted under its own digest.
func openDeltaBase(opts LoadOptions, digest [32]byte, snapPath string, stale bool) *deltaBase {
	if opts.Store != nil {
		prev, ok := opts.Store.Promoted()
		if !ok || prev == digest {
			return nil
		}
		if opts.Store.HasShards(prev) {
			return openShardedBase(opts, prev)
		}
		s, err := opts.Store.Load(prev)
		if err != nil {
			return nil
		}
		f, err := s.Index.Frozen()
		if err != nil {
			s.Close()
			return nil
		}
		return &deltaBase{
			frozen: f, lin: s.Lineage, counts: s.Counts, window: s.Window,
			parent: prev, close: func() { s.Close() },
		}
	}
	if snapPath == "" || !stale {
		return nil
	}
	s, err := ribsnap.LoadAt(snapPath)
	if err != nil {
		return nil
	}
	f, err := s.Index.Frozen()
	if err != nil {
		s.Close()
		return nil
	}
	return &deltaBase{
		frozen: f, lin: s.Lineage, counts: s.Counts, window: s.Window,
		parent: s.Digest, close: func() { s.Close() },
	}
}

// openShardedBase maps every shard of the promoted sharded generation
// (residency unbounded — the merge walks all of them anyway) and
// concatenates the pieces back into one frozen view.
func openShardedBase(opts LoadOptions, prev [32]byte) *deltaBase {
	ss, err := opts.Store.LoadShards(prev, 0)
	if err != nil {
		return nil
	}
	rels := make([]rib.ShardRelease, 0, ss.NumShards())
	closeAll := func() {
		for _, rel := range rels {
			rel.Release()
		}
		ss.Close()
	}
	frozens := make([]*rib.Frozen, ss.NumShards())
	for i := range frozens {
		ix, rel, aerr := ss.AcquireIndex(i)
		if aerr != nil {
			closeAll()
			return nil
		}
		rels = append(rels, rel)
		f, ferr := ix.Frozen()
		if ferr != nil {
			closeAll()
			return nil
		}
		frozens[i] = f
	}
	f, err := rib.ConcatFrozen(frozens)
	if err != nil {
		closeAll()
		return nil
	}
	return &deltaBase{
		frozen: f, lin: ss.Lineage(), counts: ss.Counts(), window: ss.Window(),
		parent: prev, close: closeAll,
	}
}
