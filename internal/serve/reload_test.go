package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dropscope/internal/session"
)

// eventLog collects reload lifecycle messages race-safely.
type eventLog struct {
	mu   sync.Mutex
	msgs []string
}

func (l *eventLog) add(msg string) {
	l.mu.Lock()
	l.msgs = append(l.msgs, msg)
	l.mu.Unlock()
}

func (l *eventLog) contains(substr string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.msgs {
		if strings.Contains(m, substr) {
			return true
		}
	}
	return false
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// reloadFixture wires a server, fake clock, and reloader whose load
// function fails `failures` times before delegating to the real loader.
func reloadFixture(t *testing.T, failures int32, cfg ReloadConfig) (*Server, *Reloader, *session.FakeClock, *eventLog, *atomic.Int32) {
	t.Helper()
	dir, window := writeWorld(t, 1)
	srv := New(loadDir(t, dir, window))
	clock := session.NewFake(time.Unix(1_700_000_000, 0))
	log := &eventLog{}
	cfg.Dir = dir
	cfg.Opts = LoadOptions{Window: window}
	cfg.Clock = clock
	cfg.OnEvent = log.add
	if cfg.Backoff == (session.Backoff{}) {
		cfg.Backoff = session.Backoff{Min: time.Second, Max: time.Second}
	}
	r := NewReloader(srv, cfg)
	calls := &atomic.Int32{}
	real := r.load
	r.load = func(d string, o LoadOptions) (*Generation, error) {
		if calls.Add(1) <= failures {
			return nil, errors.New("injected load failure")
		}
		return real(d, o)
	}
	return srv, r, clock, log, calls
}

// TestReloadRetryThenHeal is the self-healing acceptance test: a
// trigger whose load fails twice leaves the daemon serving the old
// generation in degraded mode, retries under backoff on the fake
// clock, and on the third attempt swaps the new generation in and
// clears the degraded flag.
func TestReloadRetryThenHeal(t *testing.T) {
	srv, r, clock, log, _ := reloadFixture(t, 2, ReloadConfig{})
	stats := srv.Stats()
	before := srv.Generation().DigestHex()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	r.Trigger()
	// Attempt 1 fails and arms the backoff timer; while it pends the
	// daemon is degraded but still serving the old generation.
	clock.BlockUntil(1)
	if !stats.Degraded.Load() {
		t.Fatal("not degraded after first failed attempt")
	}
	if stats.ReloadError() == "" {
		t.Fatal("no reload error recorded")
	}
	if srv.Generation().DigestHex() != before {
		t.Fatal("failed reload replaced the serving generation")
	}
	clock.Advance(2 * time.Second) // attempt 2 fails
	clock.BlockUntil(1)
	clock.Advance(2 * time.Second) // attempt 3 succeeds

	waitFor(t, "heal", func() bool { return !stats.Degraded.Load() && srv.Swaps() == 1 })
	if stats.ReloadRetries.Load() != 2 {
		t.Fatalf("reload_retries %d, want 2", stats.ReloadRetries.Load())
	}
	if stats.ReloadError() != "" {
		t.Fatalf("reload error %q after heal", stats.ReloadError())
	}
	if !log.contains("swapped in generation") {
		t.Fatalf("no swap event logged: %v", log.msgs)
	}
	// The healed generation's own health report carries the retries
	// that preceded it, under the serve/reload source.
	rep := srv.Generation().Pipeline().HealthReport()
	var found bool
	for _, s := range rep.Sources {
		if s.Name == "serve/reload" {
			found = true
			if s.ReloadRetries != 2 {
				t.Fatalf("serve/reload source retries %d, want 2", s.ReloadRetries)
			}
		}
	}
	if !found {
		t.Fatal("healed generation's health report missing serve/reload source")
	}
	cancel()
	<-done
}

// TestReloadBudgetExhaustedStaysDegraded pins the give-up contract: a
// cycle that burns its whole budget stops retrying but leaves the
// daemon serving (degraded, old generation); the NEXT trigger — the
// operator fixed the archive — heals it.
func TestReloadBudgetExhaustedStaysDegraded(t *testing.T) {
	srv, r, clock, log, calls := reloadFixture(t, 1<<30, ReloadConfig{Budget: 2})
	stats := srv.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	r.Trigger()
	clock.BlockUntil(1) // after failure 1
	clock.Advance(2 * time.Second)
	clock.BlockUntil(1) // after failure 2
	clock.Advance(2 * time.Second)
	// Failure 3 exceeds the budget of 2: the cycle abandons.
	waitFor(t, "budget exhaustion", func() bool { return log.contains("budget exhausted") })
	if !stats.Degraded.Load() {
		t.Fatal("not degraded after budget exhaustion")
	}
	if srv.Swaps() != 0 {
		t.Fatal("a failing reload somehow swapped")
	}

	// Fix the archive (all further loads succeed) and trigger again.
	calls.Store(1 << 30)
	r.Trigger()
	waitFor(t, "heal after repaired archive", func() bool {
		return !stats.Degraded.Load() && srv.Swaps() == 1
	})
	cancel()
	<-done
}

// TestWatchTriggersReload pins the file-watch path: the poll timer
// fires, an unchanged archive does nothing, and a changed archive
// (a new file under the directory) starts a reload cycle that swaps.
func TestWatchTriggersReload(t *testing.T) {
	worldDir, window := writeWorld(t, 1)
	watchDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(watchDir, "seed"), []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(loadDir(t, worldDir, window))
	clock := session.NewFake(time.Unix(1_700_000_000, 0))
	r := NewReloader(srv, ReloadConfig{
		Dir:   watchDir,
		Watch: time.Minute,
		Clock: clock,
	})
	r.load = func(string, LoadOptions) (*Generation, error) {
		return Load(worldDir, LoadOptions{Window: window})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	clock.BlockUntil(1) // watch timer armed
	clock.Advance(time.Minute)
	clock.BlockUntil(1) // tick processed (timer re-armed): no change, no reload
	if srv.Swaps() != 0 {
		t.Fatal("unchanged archive triggered a reload")
	}

	if err := os.WriteFile(filepath.Join(watchDir, "new-rib"), []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	waitFor(t, "watch-triggered swap", func() bool { return srv.Swaps() == 1 })
	cancel()
	<-done
}

// TestArchiveStampSensitivity pins what the watcher can see: adding,
// rewriting, and removing files all change the stamp, and — because a
// symlinked root is resolved first — flipping a symlink between two
// builds (the ln -sfn deployment pattern) reads as a change too.
func TestArchiveStampSensitivity(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "buildA")
	b := filepath.Join(dir, "buildB")
	for _, d := range []string{a, b} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(a, "rib"), []byte("aaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(b, "rib"), []byte("bbb"), 0o644); err != nil {
		t.Fatal(err)
	}

	s0 := archiveStamp(a)
	if archiveStamp(a) != s0 {
		t.Fatal("stamp not stable")
	}
	if err := os.WriteFile(filepath.Join(a, "extra"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s1 := archiveStamp(a)
	if s1 == s0 {
		t.Fatal("added file invisible to stamp")
	}
	if err := os.Remove(filepath.Join(a, "extra")); err != nil {
		t.Fatal(err)
	}

	link := filepath.Join(dir, "current")
	if err := os.Symlink(a, link); err != nil {
		t.Skipf("no symlink support: %v", err)
	}
	sA := archiveStamp(link)
	if err := os.Remove(link); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(b, link); err != nil {
		t.Fatal(err)
	}
	if archiveStamp(link) == sA {
		t.Fatal("symlink flip invisible to stamp")
	}
}
