// Package serve is the read-only query layer over a loaded study: a
// long-lived HTTP/JSON daemon answering the paper's per-prefix questions
// (visibility, ROV outcome, DROP listing status, origin history, per-day
// figures) from one shared immutable index.
//
// The package follows the ingester/API split: something else builds the
// snapshot; serve only memory-maps it and answers queries. Concurrency
// is handled by immutability — a Generation never changes after
// construction, and replacing one is an atomic pointer swap guarded by
// the snapshot's refcount (see Server.Swap). Every response carries the
// generation digest so a client can always tell which archive state it
// was answered from; stale data is visible, never silent.
package serve

import (
	"encoding/hex"
	"sort"

	"dropscope/internal/analysis"
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/ribsnap"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

// Generation is one immutable, refcounted snapshot of the study: the
// mmap'd (or cold-built) RIB index, the analysis pipeline over it, and
// flat side tables precomputed so the point-query handlers never
// allocate. All fields are read-only after newGeneration returns.
type Generation struct {
	snap *ribsnap.Snapshot
	pipe *analysis.Pipeline

	// shards is non-nil for a prefix-range sharded generation: the
	// residency manager over the generation directory's shard files. The
	// snap above is then the mapping-free master snapshot whose lifecycle
	// closes the set (see ribsnap.ShardSet.Master).
	shards *ribsnap.ShardSet

	digestHex string // lower-case hex of the archive digest
	window    timex.Range

	// deltaBuilt marks a generation produced by the incremental append
	// path (overlay replay + merge) rather than a warm map or a cold
	// rebuild. Observability only — the bytes served are identical.
	deltaBuilt bool

	// ROA validity table: roaPrefixes is sorted (duplicates allowed) and
	// parallel to roaSpans. The trie-based rpki.Archive queries allocate
	// per call; this flat form answers RFC 6811 validation with binary
	// searches over the ≤ bits+1 ancestor prefixes.
	roaPrefixes []netx.Prefix
	roaSpans    []roaSpan

	// DROP listing intervals, same layout.
	dropPrefixes []netx.Prefix
	dropSpans    []dropSpan

	// samples is the address-ordered prefix universe of the index — the
	// request universe for the load generator and the /healthz count.
	samples []netx.Prefix
}

// roaSpan is one ROA's lifetime, flattened for validation. The trust
// anchor is reduced to the two bits validation needs: whether it is one
// of the five production TALs validators configure by default, and
// whether it is an informational AS0 TAL.
type roaSpan struct {
	created timex.Day
	revoked timex.Day
	open    bool
	asn     bgp.ASN
	maxLen  uint8
	prod    bool
	as0     bool
}

func (sp *roaSpan) liveAt(d timex.Day) bool {
	return d >= sp.created && (sp.open || d < sp.revoked)
}

// dropSpan is one DROP listing interval [added, removed).
type dropSpan struct {
	added   timex.Day
	removed timex.Day
	open    bool
}

// newGeneration wraps a loaded snapshot and its pipeline. The snapshot
// may be mapping-free (a cold-built index, or the master of a sharded
// set); the lifecycle protocol is identical either way.
func newGeneration(snap *ribsnap.Snapshot, shards *ribsnap.ShardSet, pipe *analysis.Pipeline) *Generation {
	g := &Generation{
		snap:      snap,
		pipe:      pipe,
		shards:    shards,
		digestHex: hex.EncodeToString(snap.Digest[:]),
		window:    pipe.Window(),
		samples:   pipe.Index.Prefixes(),
	}
	g.buildROATable(pipe.Dataset().RPKI)
	g.buildDropTable(pipe)
	return g
}

// Acquire pins the generation's mapping for the duration of one query.
// It fails with ribsnap.ErrClosed once the generation has been retired
// by a swap.
func (g *Generation) Acquire() error { return g.snap.Acquire() }

// Release undoes one Acquire. The retired mapping unmaps when the last
// in-flight reader releases.
func (g *Generation) Release() { g.snap.Release() }

// DigestHex returns the archive digest identifying this generation, as
// carried on every response.
func (g *Generation) DigestHex() string { return g.digestHex }

// Window returns the study window the generation covers.
func (g *Generation) Window() timex.Range { return g.window }

// Pipeline exposes the analysis pipeline for the allocating endpoints
// (figures, origin timelines) and tests.
func (g *Generation) Pipeline() *analysis.Pipeline { return g.pipe }

// Shards exposes the generation's shard residency manager, nil for a
// single-file (or cold in-memory) generation.
func (g *Generation) Shards() *ribsnap.ShardSet { return g.shards }

// DeltaBuilt reports whether the generation was produced by the
// incremental append path rather than a warm map or cold rebuild.
func (g *Generation) DeltaBuilt() bool { return g.deltaBuilt }

// buildROATable replays the ROA journal into flat parallel arrays. A
// revoke closes the oldest open span of the same ROA — the same
// first-match rule rpki.Archive.Revoke applies — so span lifetimes are
// identical to the archive's.
func (g *Generation) buildROATable(a *rpki.Archive) {
	if a == nil {
		return
	}
	open := make(map[rpki.ROA][]int)
	for _, e := range a.Events() {
		if e.Created {
			open[e.ROA] = append(open[e.ROA], len(g.roaSpans))
			g.roaPrefixes = append(g.roaPrefixes, e.ROA.Prefix)
			g.roaSpans = append(g.roaSpans, roaSpan{
				created: e.Day,
				open:    true,
				asn:     e.ROA.ASN,
				maxLen:  uint8(e.ROA.MaxLength),
				prod:    isProdTAL(e.ROA.TA),
				as0:     e.ROA.TA.IsAS0TAL(),
			})
			continue
		}
		if idxs := open[e.ROA]; len(idxs) > 0 {
			sp := &g.roaSpans[idxs[0]]
			sp.revoked, sp.open = e.Day, false
			open[e.ROA] = idxs[1:]
		}
	}
	sort.Sort(&roaByPrefix{g.roaPrefixes, g.roaSpans})
}

func isProdTAL(ta rpki.TrustAnchor) bool {
	switch ta {
	case rpki.TAAfrinic, rpki.TAAPNIC, rpki.TAARIN, rpki.TALACNIC, rpki.TARIPE:
		return true
	}
	return false
}

// buildDropTable flattens the pipeline's diffed listing events into
// per-prefix intervals. ListedAt over the diffed archive is equivalent
// to the interval test added <= d < removed because Added and Removed
// are both snapshot days.
func (g *Generation) buildDropTable(pipe *analysis.Pipeline) {
	for _, l := range pipe.Listings {
		g.dropPrefixes = append(g.dropPrefixes, l.Prefix)
		g.dropSpans = append(g.dropSpans, dropSpan{
			added:   l.Added,
			removed: l.Removed,
			open:    !l.HasRemoved,
		})
	}
	sort.Sort(&dropByPrefix{g.dropPrefixes, g.dropSpans})
}

type roaByPrefix struct {
	p []netx.Prefix
	s []roaSpan
}

func (t *roaByPrefix) Len() int           { return len(t.p) }
func (t *roaByPrefix) Less(i, j int) bool { return t.p[i].Compare(t.p[j]) < 0 }
func (t *roaByPrefix) Swap(i, j int) {
	t.p[i], t.p[j] = t.p[j], t.p[i]
	t.s[i], t.s[j] = t.s[j], t.s[i]
}

type dropByPrefix struct {
	p []netx.Prefix
	s []dropSpan
}

func (t *dropByPrefix) Len() int           { return len(t.p) }
func (t *dropByPrefix) Less(i, j int) bool { return t.p[i].Compare(t.p[j]) < 0 }
func (t *dropByPrefix) Swap(i, j int) {
	t.p[i], t.p[j] = t.p[j], t.p[i]
	t.s[i], t.s[j] = t.s[j], t.s[i]
}

// lowerBound returns the first index i with ps[i] >= q. Hand-rolled so
// the hot query path carries no sort.Search closure.
func lowerBound(ps []netx.Prefix, q netx.Prefix) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ps[mid].Compare(q) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ROV runs RFC 6811 origin validation of (p, origin) against the ROAs
// live on day d, under the default production TALs; as0 additionally
// admits the informational AS0 TALs. Semantics match
// rpki.Archive.ValidateAt over the same TAL set; this form is
// allocation-free. Probing every ancestor prefix replaces the trie's
// covering walk.
func (g *Generation) ROV(p netx.Prefix, origin bgp.ASN, d timex.Day, as0 bool) rpki.Validity {
	covered := false
	for b := 0; b <= p.Bits(); b++ {
		q := netx.PrefixFrom(p.Addr(), b)
		for i := lowerBound(g.roaPrefixes, q); i < len(g.roaPrefixes) && g.roaPrefixes[i] == q; i++ {
			sp := &g.roaSpans[i]
			if !sp.liveAt(d) || !(sp.prod || (as0 && sp.as0)) {
				continue
			}
			covered = true
			if p.Bits() <= int(sp.maxLen) && sp.asn == origin && sp.asn != bgp.AS0 {
				return rpki.Valid
			}
		}
	}
	if covered {
		return rpki.Invalid
	}
	return rpki.NotFound
}

// DropListed reports whether p was on the DROP list effective on day d.
// Semantics match drop.Archive.ListedAt; this form is allocation-free.
func (g *Generation) DropListed(p netx.Prefix, d timex.Day) bool {
	for i := lowerBound(g.dropPrefixes, p); i < len(g.dropPrefixes) && g.dropPrefixes[i] == p; i++ {
		sp := &g.dropSpans[i]
		if sp.added <= d && (sp.open || d < sp.removed) {
			return true
		}
	}
	return false
}

// Visibility returns the exact-route visibility of p on day d: how many
// of the index's peers carried it, out of how many registered.
func (g *Generation) Visibility(p netx.Prefix, d timex.Day) (visible, peers int) {
	return g.pipe.Index.VisibleCount(p, d), g.pipe.Index.NumPeers()
}
