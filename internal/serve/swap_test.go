package serve

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dropscope/internal/ribsnap"
	"dropscope/internal/timex"
)

// swapWorlds builds two archive directories with different seeds — two
// distinct generations with distinct digests — and returns them with
// the shared window. Snapshot persistence is enabled so reloads of the
// same directory warm-start (the daemon's SIGHUP path).
func swapWorlds(t *testing.T) (dirA, dirB string, window timex.Range) {
	t.Helper()
	dirA, window = writeWorld(t, 1)
	dirB, windowB := writeWorld(t, 2)
	if window != windowB {
		t.Fatal("windows differ")
	}
	return dirA, dirB, window
}

func loadDir(t *testing.T, dir string, window timex.Range) *Generation {
	t.Helper()
	g, err := Load(dir, LoadOptions{Window: window, SnapshotDir: dir + "/ribsnap"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// render answers one query on a dedicated single-generation server —
// the reference bytes a hammered response must match exactly.
func render(t *testing.T, g *Generation, path string) []byte {
	t.Helper()
	w := httptest.NewRecorder()
	New(g).ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	if w.Code != 200 {
		t.Fatalf("render %s: status %d: %s", path, w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// TestSwapUnderLoad is the generation-swap acceptance test: N
// goroutines hammer the point queries while the main goroutine swaps
// generations M times. Every response must be 200, byte-identical to
// that generation's single-generation render (no torn reads, no mixed
// generations), and every retired mapping must drain: once its last
// reader exits, Acquire fails with ribsnap.ErrClosed. Run with -race
// this also proves the swap protocol race-free.
func TestSwapUnderLoad(t *testing.T) {
	dirA, dirB, window := swapWorlds(t)

	// Reference generations, never swapped: expected bytes per digest.
	refA := loadDir(t, dirA, window)
	refB := loadDir(t, dirB, window)
	if refA.DigestHex() == refB.DigestHex() {
		t.Fatal("worlds share a digest; swap would be invisible")
	}

	paths := []string{
		"/v1/visibility?prefix=" + escapePrefix(refA.samples[0]) + "&day=" + window.First.String(),
		"/v1/visibility?prefix=" + escapePrefix(refA.samples[len(refA.samples)/2]) + "&day=" + window.Last.String(),
		"/v1/rov?prefix=" + escapePrefix(refA.samples[1]) + "&origin=64500&day=" + window.Last.String(),
		"/v1/rov?prefix=" + escapePrefix(refA.samples[2]) + "&origin=0&day=" + window.First.String(),
		"/v1/drop?prefix=" + escapePrefix(refA.samples[3]) + "&day=" + window.Last.String(),
	}
	expect := map[string]map[string][]byte{
		refA.DigestHex(): make(map[string][]byte),
		refB.DigestHex(): make(map[string][]byte),
	}
	for _, p := range paths {
		expect[refA.DigestHex()][p] = render(t, refA, p)
		expect[refB.DigestHex()][p] = render(t, refB, p)
	}

	first := loadDir(t, dirA, window)
	s := New(first)

	const hammerers = 8
	const swapsWanted = 6
	// Load every incoming generation up front: the hammer should spend
	// its wall clock racing swaps, not waiting on archive loads.
	nexts := make([]*Generation, swapsWanted)
	for i := range nexts {
		dir := dirB
		if i%2 == 1 {
			dir = dirA
		}
		nexts[i] = loadDir(t, dir, window)
	}
	var (
		stop    atomic.Bool
		served  atomic.Uint64
		dropped atomic.Uint64
		wg      sync.WaitGroup
	)
	for i := 0; i < hammerers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; !stop.Load(); n++ {
				path := paths[(i+n)%len(paths)]
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
				if w.Code != 200 {
					dropped.Add(1)
					t.Errorf("hammer: %s -> %d: %s", path, w.Code, w.Body.String())
					continue
				}
				gen := w.Header().Get("X-Dropscope-Generation")
				want, ok := expect[gen][path]
				if !ok {
					t.Errorf("hammer: response from unknown generation %q", gen)
					continue
				}
				if !bytes.Equal(w.Body.Bytes(), want) {
					t.Errorf("hammer: %s from generation %s: body differs from single-generation render\ngot:  %s\nwant: %s",
						path, gen[:12], w.Body.String(), want)
				}
				served.Add(1)
			}
		}(i)
	}

	// Swap back and forth between the two worlds while the hammer runs,
	// pausing between swaps so each generation serves real traffic.
	retired := make([]*Generation, 0, swapsWanted)
	for _, next := range nexts {
		time.Sleep(20 * time.Millisecond)
		retired = append(retired, s.Swap(next))
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if dropped.Load() != 0 {
		t.Fatalf("%d queries dropped across %d swaps", dropped.Load(), swapsWanted)
	}
	if served.Load() == 0 {
		t.Fatal("hammer served nothing")
	}
	if s.Swaps() != swapsWanted {
		t.Fatalf("swap count %d, want %d", s.Swaps(), swapsWanted)
	}
	// Every retired generation has drained: late acquires must see the
	// typed close error, and the live one must still acquire.
	for i, g := range retired {
		if err := g.Acquire(); !errors.Is(err, ribsnap.ErrClosed) {
			t.Fatalf("retired generation %d: Acquire = %v, want ErrClosed", i, err)
		}
	}
	live := s.Generation()
	if err := live.Acquire(); err != nil {
		t.Fatalf("live generation: %v", err)
	}
	live.Release()
}

// TestSwapPostStateByteIdentical pins the acceptance criterion that a
// post-swap response is byte-identical to a cold render of the new
// snapshot: swap in world B, then compare every point query against a
// server built directly over a cold load of B.
func TestSwapPostStateByteIdentical(t *testing.T) {
	dirA, dirB, window := swapWorlds(t)
	s := New(loadDir(t, dirA, window))
	s.Swap(loadDir(t, dirB, window))

	cold, err := Load(dirB, LoadOptions{Window: window}) // no snapshot: forced cold build
	if err != nil {
		t.Fatal(err)
	}
	if cold.DigestHex() != s.Generation().DigestHex() {
		t.Fatal("cold load and swapped generation disagree on digest")
	}
	for _, p := range cold.samples[:32] {
		for _, path := range []string{
			"/v1/visibility?prefix=" + escapePrefix(p) + "&day=" + window.Last.String(),
			"/v1/rov?prefix=" + escapePrefix(p) + "&origin=64500",
			"/v1/drop?prefix=" + escapePrefix(p),
		} {
			w := httptest.NewRecorder()
			s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
			if want := render(t, cold, path); !bytes.Equal(w.Body.Bytes(), want) {
				t.Fatalf("%s: swapped render differs from cold render\ngot:  %s\nwant: %s",
					path, w.Body.String(), want)
			}
		}
	}
}
