//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in. The
// allocation-regression tests skip under it: instrumentation perturbs
// allocation counts.
const raceEnabled = false
