package serve

import (
	"context"
	"fmt"
	"time"

	"dropscope/internal/ribsnap"
	"dropscope/internal/session"
)

// Scrubber is the background integrity loop: it incrementally re-reads
// the live generation's backing snapshot file in small, rate-limited
// steps and re-verifies the payload CRC against the header, catching
// bitrot and torn overwrites long after the load-time check passed.
// Every step runs with the generation pinned (Acquire/Release), and the
// verification reads go through the snapshot's retained file handle —
// never the mapping — so a damaged or truncated file surfaces as a
// typed error in the scrubber, not a SIGBUS in a query handler.
//
// On a mismatch the scrubber marks the generation corrupt in the
// snapshot store (so no future load re-adopts the damaged file), flips
// the daemon to degraded, and hands the reload supervisor a trigger:
// the reload finds the store refusing the corrupt generation, cold-
// rebuilds from the archive, rewrites the snapshot, and swaps it in.
// Degraded, never down: queries keep answering from the mapped (page-
// cache-pinned) generation throughout.
type Scrubber struct {
	srv   *Server
	cfg   ScrubConfig
	clock session.Clock
	stats *Stats
}

// ScrubConfig parameterizes a Scrubber.
type ScrubConfig struct {
	// Chunk is how many payload bytes one step verifies; 0 means 1 MiB.
	Chunk int
	// Interval is the pause between steps — the rate limit that keeps
	// scrub reads from competing with query traffic; 0 means 50ms.
	Interval time.Duration
	// PassInterval is the idle pause after a completed pass (and the
	// re-probe interval while there is nothing to scrub); 0 means 1m.
	PassInterval time.Duration
	// Store, when non-nil, records corruption findings in the manifest
	// journal so the damaged generation is never re-adopted.
	Store *ribsnap.Store
	// Reloader, when non-nil, is triggered on corruption to cold-rebuild
	// a replacement generation.
	Reloader *Reloader
	// Clock drives the pacing; nil = real clock.
	Clock session.Clock
	// OnEvent, when non-nil, observes scrub lifecycle messages.
	OnEvent func(string)
}

// NewScrubber builds a scrubber over srv, sharing its Stats.
func NewScrubber(srv *Server, cfg ScrubConfig) *Scrubber {
	if cfg.Chunk <= 0 {
		cfg.Chunk = 1 << 20
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.PassInterval <= 0 {
		cfg.PassInterval = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = session.Real()
	}
	return &Scrubber{srv: srv, cfg: cfg, clock: cfg.Clock, stats: srv.stats}
}

// Run paces verification steps until ctx ends. It is the only
// goroutine that advances scrub state; all coordination with swaps
// goes through the generation refcount.
func (s *Scrubber) Run(ctx context.Context) error {
	t := s.clock.NewTimer(s.cfg.Interval)
	defer t.Stop()
	var (
		cur   *Generation // generation the in-progress pass belongs to
		pass  *ribsnap.Scrub
		spass *shardPass
	)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C():
		}

		g := s.srv.Generation()
		if g != cur {
			// A swap landed (or the first generation arrived): abandon
			// any stale pass and open one over the new generation.
			cur, pass = g, nil
			spass.close()
			spass = nil
			if g != nil {
				if ss := g.shards; ss != nil {
					spass = &shardPass{ss: ss}
					s.event(fmt.Sprintf("scrub: starting sharded pass over generation %s (%d shards)",
						g.DigestHex()[:12], ss.NumShards()))
				} else if err := g.Acquire(); err == nil {
					pass = g.snap.NewScrub()
					g.Release()
				}
			}
			if pass != nil {
				s.event(fmt.Sprintf("scrub: starting pass over generation %s (%d payload bytes)",
					g.DigestHex()[:12], pass.Size()))
			}
		}
		if spass != nil {
			done, retired := s.stepShards(cur, spass)
			switch {
			case retired:
				cur, spass = nil, nil
				t.Reset(s.cfg.Interval)
			case done:
				s.stats.ScrubPasses.Add(1)
				s.event(fmt.Sprintf("scrub: sharded pass over generation %s complete (%d bytes)",
					cur.DigestHex()[:12], spass.bytes))
				// Forget the generation so the next tick starts a fresh
				// pass — rot accumulates with time, not with swaps.
				cur, spass = nil, nil
				t.Reset(s.cfg.PassInterval)
			default:
				t.Reset(s.cfg.Interval)
			}
			continue
		}
		if pass == nil {
			// Nothing to verify: no generation yet, a cold-built
			// (file-less) generation, or a finding we already reported.
			t.Reset(s.cfg.PassInterval)
			continue
		}

		if err := cur.Acquire(); err != nil {
			// Retired under us; re-probe for the replacement shortly.
			cur, pass = nil, nil
			t.Reset(s.cfg.Interval)
			continue
		}
		before := pass.Offset()
		done, err := pass.Step(s.cfg.Chunk)
		cur.Release()
		s.stats.ScrubBytes.Add(pass.Offset() - before)

		switch {
		case err != nil:
			s.stats.CorruptTotal.Add(1)
			s.stats.SetScrubError(err.Error())
			s.stats.Degraded.Store(true)
			s.event(fmt.Sprintf("scrub: corruption on live generation %s: %v",
				cur.DigestHex()[:12], err))
			if s.cfg.Store != nil {
				if merr := s.cfg.Store.MarkCorrupt(cur.snap.Digest); merr != nil {
					s.event(fmt.Sprintf("scrub: recording corruption: %v", merr))
				}
			}
			if s.cfg.Reloader != nil {
				s.cfg.Reloader.Trigger()
			}
			// Keep cur: the damaged generation is scrubbed exactly once.
			// The pass restarts when a replacement is swapped in.
			pass = nil
			t.Reset(s.cfg.PassInterval)
		case done:
			s.stats.ScrubPasses.Add(1)
			s.event(fmt.Sprintf("scrub: pass over generation %s complete (%d bytes)",
				cur.DigestHex()[:12], pass.Size()))
			// Forget the generation so the next tick starts a fresh pass
			// over it — rot accumulates with time, not with swaps.
			cur, pass = nil, nil
			t.Reset(s.cfg.PassInterval)
		default:
			t.Reset(s.cfg.Interval)
		}
	}
}

func (s *Scrubber) event(msg string) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(msg)
	}
}

// shardPass walks a sharded generation one shard file at a time. Each
// shard is verified with its own self-owned scrub handle (OpenScrub),
// so an evicted shard is re-read straight from disk without faulting
// it back into the residency budget, and a resident one is verified
// through the same inode its mapping came from.
type shardPass struct {
	ss    *ribsnap.ShardSet
	next  int            // next shard to open
	cur   *ribsnap.Scrub // in-progress shard, nil between shards
	shard int            // index of cur
	bytes uint64         // payload bytes verified across the pass
}

// close abandons the in-progress shard handle; safe on nil.
func (sp *shardPass) close() {
	if sp != nil && sp.cur != nil {
		sp.cur.Close()
		sp.cur = nil
	}
}

// stepShards advances a sharded pass by one chunk. Unlike the
// single-file path — where a finding kills the whole generation's pass
// — a damaged shard is marked bad (failing fast for its prefix range
// only) and the pass moves on to the next shard: the rest of the
// address space keeps its integrity coverage while the reload
// supervisor rebuilds.
func (s *Scrubber) stepShards(cur *Generation, sp *shardPass) (done, retired bool) {
	if err := cur.Acquire(); err != nil {
		sp.close()
		return false, true
	}
	defer cur.Release()
	for sp.cur == nil {
		if sp.next >= sp.ss.NumShards() {
			return true, false
		}
		i := sp.next
		sp.next++
		if sp.ss.IsBad(i) {
			continue // already reported; nothing left to learn
		}
		sc, err := ribsnap.OpenScrub(sp.ss.ShardPath(i))
		if err != nil {
			s.shardCorrupt(cur, i, err)
			continue
		}
		sp.cur, sp.shard = sc, i
	}
	before := sp.cur.Offset()
	stepDone, err := sp.cur.Step(s.cfg.Chunk)
	verified := sp.cur.Offset() - before
	s.stats.ScrubBytes.Add(verified)
	sp.bytes += verified
	if err != nil {
		s.shardCorrupt(cur, sp.shard, err)
		sp.close()
		return sp.next >= sp.ss.NumShards(), false
	}
	if stepDone {
		sp.close()
		return sp.next >= sp.ss.NumShards(), false
	}
	return false, false
}

// shardCorrupt records a scrub finding against one shard: the shard is
// quarantined in the set (queries on its range fail fast, the rest of
// the generation keeps serving), the generation is journaled corrupt
// so no future load re-adopts it, and the reload supervisor is
// triggered to rebuild.
func (s *Scrubber) shardCorrupt(cur *Generation, i int, err error) {
	s.stats.CorruptTotal.Add(1)
	s.stats.SetScrubError(fmt.Sprintf("shard %d: %v", i, err))
	s.stats.Degraded.Store(true)
	cur.shards.MarkBad(i)
	s.event(fmt.Sprintf("scrub: corruption on generation %s shard %d: %v",
		cur.DigestHex()[:12], i, err))
	if s.cfg.Store != nil {
		if merr := s.cfg.Store.MarkCorrupt(cur.snap.Digest); merr != nil {
			s.event(fmt.Sprintf("scrub: recording corruption: %v", merr))
		}
	}
	if s.cfg.Reloader != nil {
		s.cfg.Reloader.Trigger()
	}
}
