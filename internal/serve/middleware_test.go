package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dropscope/internal/ribsnap"
)

// mwServer builds a middleware-wrapped server over the shared read-only
// generation with a tiny admission gate, for the shed-path tests.
func mwServer(t *testing.T, cfg MiddlewareConfig) (*Middleware, *Generation) {
	t.Helper()
	g := loadGen(t)
	return Wrap(New(g), cfg), g
}

// getMW drives one request through the middleware.
func getMW(m *Middleware, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	m.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestAdmissionShed pins the shed contract: with the single inflight
// slot held and no queue, the next request answers 503 with a
// Retry-After hint and a JSON error body, and the shed counter moves.
// /healthz and /metrics bypass the gate — overload must never make the
// daemon unobservable.
func TestAdmissionShed(t *testing.T) {
	m, g := mwServer(t, MiddlewareConfig{
		Gate:       GateConfig{MaxInflight: 1, MaxQueue: -1},
		RetryAfter: 3 * time.Second,
	})
	day := g.window.Last.String()
	point := "/v1/visibility?prefix=" + escapePrefix(g.samples[0]) + "&day=" + day

	// Hold the only slot from a blocked request.
	entered := make(chan struct{})
	release := make(chan struct{})
	m.srv.testHook = func(r *http.Request) {
		if r.URL.Path == "/v1/hold" {
			close(entered)
			<-release
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		getMW(m, "/v1/hold") // 404 after the hold, immaterial
	}()
	<-entered

	w := getMW(m, point)
	if w.Code != 503 {
		t.Fatalf("saturated gate: status %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want %q", got, "3")
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error != "overloaded" {
		t.Fatalf("shed body %q", w.Body.String())
	}
	if m.stats.Shed.Load() != 1 {
		t.Fatalf("shed counter %d, want 1", m.stats.Shed.Load())
	}
	// Observability endpoints bypass the gate even when it is saturated.
	for _, p := range []string{"/healthz", "/metrics"} {
		if w := getMW(m, p); w.Code != 200 {
			t.Fatalf("%s through saturated gate: status %d", p, w.Code)
		}
	}
	close(release)
	wg.Wait()

	// The slot is free again: the same point query is admitted.
	if w := getMW(m, point); w.Code != 200 {
		t.Fatalf("after release: status %d: %s", w.Code, w.Body.String())
	}
	if got := m.stats.Inflight.Load(); got != 0 {
		t.Fatalf("inflight %d after drain, want 0", got)
	}
}

// TestAdmissionQueueAdmits pins the queue path: a request that arrives
// while the gate is full waits (briefly) and is admitted when the slot
// frees within the queue wait.
func TestAdmissionQueueAdmits(t *testing.T) {
	m, g := mwServer(t, MiddlewareConfig{
		Gate: GateConfig{MaxInflight: 1, MaxQueue: 1, QueueWait: 5 * time.Second},
	})
	point := "/v1/drop?prefix=" + escapePrefix(g.samples[1]) + "&day=" + g.window.Last.String()

	entered := make(chan struct{})
	release := make(chan struct{})
	m.srv.testHook = func(r *http.Request) {
		if r.URL.Path == "/v1/hold" {
			close(entered)
			<-release
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		getMW(m, "/v1/hold")
	}()
	<-entered

	queued := make(chan *httptest.ResponseRecorder, 1)
	go func() { queued <- getMW(m, point) }()
	// Wait until the second request is actually parked in the queue,
	// then free the slot; it must be admitted, not shed.
	deadline := time.Now().Add(5 * time.Second)
	for m.stats.Queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	w := <-queued
	wg.Wait()
	if w.Code != 200 {
		t.Fatalf("queued request: status %d, want 200: %s", w.Code, w.Body.String())
	}
	if m.stats.Shed.Load() != 0 {
		t.Fatalf("shed %d, want 0", m.stats.Shed.Load())
	}
	if m.stats.Queued.Load() != 0 {
		t.Fatalf("queued gauge %d after drain, want 0", m.stats.Queued.Load())
	}
}

// TestDrainRejectsNewArrivals pins the shutdown contract: once
// StartDrain is called every new request — the query endpoints and
// /healthz alike, so load balancers eject the instance — answers 503,
// while a request already admitted runs to completion.
func TestDrainRejectsNewArrivals(t *testing.T) {
	m, g := mwServer(t, MiddlewareConfig{})
	point := "/v1/visibility?prefix=" + escapePrefix(g.samples[2]) + "&day=" + g.window.First.String()

	entered := make(chan struct{})
	release := make(chan struct{})
	m.srv.testHook = func(r *http.Request) {
		if r.URL.Path == point2URLPath(point) {
			select {
			case <-entered:
			default:
				close(entered)
				<-release
			}
		}
	}
	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inflight <- getMW(m, point) }()
	<-entered

	if m.Draining() {
		t.Fatal("draining before StartDrain")
	}
	m.StartDrain()
	m.StartDrain() // idempotent
	if !m.Draining() {
		t.Fatal("not draining after StartDrain")
	}
	for _, p := range []string{point, "/healthz", "/metrics"} {
		w := getMW(m, p)
		if w.Code != 503 {
			t.Fatalf("%s during drain: status %d, want 503", p, w.Code)
		}
		if !strings.Contains(w.Body.String(), "draining") {
			t.Fatalf("%s drain body %q", p, w.Body.String())
		}
	}
	// The admitted request still completes normally.
	close(release)
	if w := <-inflight; w.Code != 200 {
		t.Fatalf("in-flight request during drain: status %d: %s", w.Code, w.Body.String())
	}
}

// point2URLPath strips the query from a test path.
func point2URLPath(p string) string {
	if i := strings.IndexByte(p, '?'); i >= 0 {
		return p[:i]
	}
	return p
}

// TestPanicReleasesGeneration is the panic-isolation acceptance test: a
// handler that panics answers 500 (not a killed connection), increments
// the panics counter, and — the part that matters for the swap protocol
// — still releases its generation pin during unwind. After swapping the
// panicked-on generation out, it must drain to refcount zero and refuse
// new Acquires with ribsnap.ErrClosed; a leaked pin would wedge the
// retired mapping forever.
func TestPanicReleasesGeneration(t *testing.T) {
	dirA, dirB, window := swapWorlds(t)
	first := loadDir(t, dirA, window)
	s := New(first)
	m := Wrap(s, MiddlewareConfig{})
	s.testHook = func(r *http.Request) {
		if r.URL.Path == "/v1/panic" {
			panic("deliberate test panic")
		}
	}

	const panics = 5
	for i := 0; i < panics; i++ {
		w := getMW(m, "/v1/panic")
		if w.Code != 500 {
			t.Fatalf("panicking request: status %d, want 500", w.Code)
		}
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Fatalf("panic body %q not a JSON error", w.Body.String())
		}
	}
	if got := m.stats.Panics.Load(); got != panics {
		t.Fatalf("panics counter %d, want %d", got, panics)
	}

	// Retire the generation the panicking requests ran on. Their pins
	// were released during unwind, so it drains immediately.
	retired := s.Swap(loadDir(t, dirB, window))
	if retired != first {
		t.Fatal("swap retired the wrong generation")
	}
	if refs := retired.snap.Refs(); refs != 0 {
		t.Fatalf("retired generation holds %d refs after panics, want 0", refs)
	}
	if err := retired.Acquire(); !errors.Is(err, ribsnap.ErrClosed) {
		t.Fatalf("retired Acquire = %v, want ErrClosed", err)
	}
	// And the server still works.
	g := s.Generation()
	point := "/v1/drop?prefix=" + escapePrefix(g.samples[0]) + "&day=" + window.Last.String()
	if w := getMW(m, point); w.Code != 200 {
		t.Fatalf("post-panic request: status %d", w.Code)
	}
}

// TestRequestDeadlines pins which endpoints run under a context
// deadline: the allocating endpoints (origins, figures) do, the
// zero-alloc point queries do not (their bound is the admission queue
// wait plus the server's WriteTimeout, and arming a context would cost
// allocations). A stalled slow handler is cut when the deadline fires.
func TestRequestDeadlines(t *testing.T) {
	m, g := mwServer(t, MiddlewareConfig{RequestTimeout: 100 * time.Millisecond})
	var mu sync.Mutex
	deadlines := map[string]bool{}
	m.srv.testHook = func(r *http.Request) {
		_, has := r.Context().Deadline()
		mu.Lock()
		deadlines[r.URL.Path] = has
		mu.Unlock()
		if r.URL.Path == "/v1/stall" {
			// A handler that hangs: only the armed deadline frees it.
			<-r.Context().Done()
		}
	}
	day := g.window.Last.String()
	getMW(m, "/v1/visibility?prefix="+escapePrefix(g.samples[0])+"&day="+day)
	getMW(m, "/v1/origins?prefix="+escapePrefix(g.samples[0]))
	getMW(m, "/v1/figures/"+day)

	mu.Lock()
	if deadlines["/v1/visibility"] {
		t.Error("point query ran under a context deadline; that path must stay allocation-free")
	}
	if !deadlines["/v1/origins"] || !deadlines["/v1/figures/"+day] {
		t.Errorf("slow endpoints missing deadlines: %+v", deadlines)
	}
	mu.Unlock()

	t0 := time.Now()
	getMW(m, "/v1/stall")
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("stalled handler ran %v; deadline never fired", elapsed)
	}
}

// TestMetricsExportsResilienceCounters pins the /metrics additions:
// inflight, queued, shed_total, panics_total, reload_retries, degraded,
// generation age, and the serve/http source folded into the ingest
// report.
func TestMetricsExportsResilienceCounters(t *testing.T) {
	m, g := mwServer(t, MiddlewareConfig{Gate: GateConfig{MaxInflight: 1, MaxQueue: -1}})
	s := m.srv

	// Manufacture one shed and one panic, then flip degraded state.
	entered := make(chan struct{})
	release := make(chan struct{})
	s.testHook = func(r *http.Request) {
		switch r.URL.Path {
		case "/v1/hold":
			close(entered)
			<-release
		case "/v1/panic":
			panic("metric panic")
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); getMW(m, "/v1/hold") }()
	<-entered
	getMW(m, "/v1/visibility?prefix="+escapePrefix(g.samples[0])) // shed
	close(release)
	wg.Wait()
	getMW(m, "/v1/panic")
	s.stats.ReloadRetries.Add(2)
	s.stats.Degraded.Store(true)
	s.stats.SetReloadError("archive on fire")

	w := getMW(m, "/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics status %d", w.Code)
	}
	var mr struct {
		Inflight      int64   `json:"inflight"`
		Queued        int64   `json:"queued"`
		Shed          uint64  `json:"shed_total"`
		Panics        uint64  `json:"panics_total"`
		ReloadRetries uint64  `json:"reload_retries"`
		Degraded      int     `json:"degraded"`
		GenAge        float64 `json:"generation_age_seconds"`
		Ingest        struct {
			Sources []struct {
				Name          string `json:"name"`
				Shed          uint64 `json:"shed"`
				Panics        uint64 `json:"panics"`
				ReloadRetries uint64 `json:"reload_retries"`
			} `json:"sources"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatalf("metrics: %v\n%s", err, w.Body.String())
	}
	if mr.Inflight != 0 || mr.Queued != 0 {
		t.Errorf("gauges inflight=%d queued=%d, want 0/0 at rest", mr.Inflight, mr.Queued)
	}
	if mr.Shed != 1 || mr.Panics != 1 || mr.ReloadRetries != 2 || mr.Degraded != 1 {
		t.Errorf("counters shed=%d panics=%d retries=%d degraded=%d",
			mr.Shed, mr.Panics, mr.ReloadRetries, mr.Degraded)
	}
	if mr.GenAge < 0 {
		t.Errorf("generation_age_seconds %v negative", mr.GenAge)
	}
	var found bool
	for _, src := range mr.Ingest.Sources {
		if src.Name == "serve/http" {
			found = true
			if src.Shed != 1 || src.Panics != 1 || src.ReloadRetries != 2 {
				t.Errorf("serve/http source: %+v", src)
			}
		}
	}
	if !found {
		t.Error("ingest report missing the serve/http source")
	}

	// Degraded healthz: still 200, status flips, reload_error surfaces.
	w = getMW(m, "/healthz")
	if w.Code != 200 {
		t.Fatalf("degraded healthz status %d, want 200 (stale-but-available is healthy)", w.Code)
	}
	var hr struct {
		Status      string `json:"status"`
		Degraded    bool   `json:"degraded"`
		ReloadError string `json:"reload_error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || !hr.Degraded || hr.ReloadError != "archive on fire" {
		t.Errorf("degraded healthz: %+v", hr)
	}

	// Healed: back to ok, no reload_error key.
	s.stats.Degraded.Store(false)
	s.stats.SetReloadError("")
	w = getMW(m, "/healthz")
	if !strings.Contains(w.Body.String(), `"status":"ok"`) ||
		strings.Contains(w.Body.String(), "reload_error") {
		t.Errorf("healed healthz: %s", w.Body.String())
	}
}
