package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dropscope/internal/ribsnap"
)

// waitLong polls cond with a deadline wide enough to cover a cold
// archive rebuild under the race detector.
func waitLong(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// scrubFixture loads a file-backed (warm, mmap'd) generation through a
// manifest store: a first load cold-builds and persists the generation
// file, a second one maps it.
func scrubFixture(t *testing.T) (*Server, *ribsnap.Store, [32]byte, string, LoadOptions) {
	t.Helper()
	dir, window := writeWorld(t, 1)
	store, err := ribsnap.OpenStore(filepath.Join(t.TempDir(), "ribsnap"), ribsnap.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadOptions{Window: window, Store: store}
	cold, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold.snap.Close()
	warm, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.snap.NewScrub() == nil {
		t.Fatal("second load is not file-backed; nothing would scrub")
	}
	return New(warm), store, warm.snap.Digest, dir, opts
}

// TestScrubCleanPass: over an intact generation the scrubber completes
// passes, accumulates byte counters, and never degrades.
func TestScrubCleanPass(t *testing.T) {
	srv, _, _, _, _ := scrubFixture(t)
	sc := NewScrubber(srv, ScrubConfig{
		Chunk:        1 << 20,
		Interval:     time.Millisecond,
		PassInterval: 2 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); sc.Run(ctx) }()

	stats := srv.Stats()
	waitFor(t, "a completed scrub pass", func() bool { return stats.ScrubPasses.Load() >= 2 })
	cancel()
	<-done
	if stats.CorruptTotal.Load() != 0 {
		t.Fatalf("clean generation scrubbed corrupt %d times", stats.CorruptTotal.Load())
	}
	if stats.Degraded.Load() {
		t.Fatal("clean scrub degraded the daemon")
	}
	if stats.ScrubBytes.Load() == 0 {
		t.Fatal("no bytes accounted")
	}
}

// TestScrubDetectsBitrotAndHeals is the acceptance soak: a byte of the
// live generation's snapshot file is flipped while query load runs.
// The scrubber must detect it, journal the generation corrupt, flip
// /healthz to degraded, and trigger a reload that cold-rebuilds and
// swaps a clean generation in — degraded then healthy, zero failed
// queries, zero crashes.
func TestScrubDetectsBitrotAndHeals(t *testing.T) {
	srv, store, digest, dir, opts := scrubFixture(t)
	stats := srv.Stats()
	log := &eventLog{}

	r := NewReloader(srv, ReloadConfig{Dir: dir, Opts: opts, OnEvent: log.add})
	sc := NewScrubber(srv, ScrubConfig{
		Chunk:        1 << 20,
		Interval:     time.Millisecond,
		PassInterval: 2 * time.Millisecond,
		Store:        store,
		Reloader:     r,
		OnEvent:      log.add,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.Run(ctx) }()
	go func() { defer wg.Done(); sc.Run(ctx) }()

	// Query load for the duration: every response must succeed.
	var queries, failures atomic.Uint64
	prefix := srv.Generation().samples[0]
	target := fmt.Sprintf("/v1/visibility?prefix=%s", prefix)
	stopLoad := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
				queries.Add(1)
				if rec.Code != 200 {
					failures.Add(1)
				}
			}
		}()
	}

	// Let the scrubber get going, then rot the live generation's file.
	waitFor(t, "scrub activity", func() bool { return stats.ScrubBytes.Load() > 0 })
	// Flip one payload byte in place (WriteAt, no truncation: the file
	// is mmap'd by the live generation, and shrinking it would be the
	// harness SIGBUSing the daemon rather than simulating bitrot).
	path := store.GenPath(digest)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := info.Size() / 2
	var one [1]byte
	if _, err := fh.ReadAt(one[:], mid); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x10
	if _, err := fh.WriteAt(one[:], mid); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// Detection: degraded, counted, journaled.
	waitLong(t, "corruption detection", func() bool { return stats.CorruptTotal.Load() >= 1 })
	waitLong(t, "degraded mode", func() bool { return stats.Degraded.Load() })
	if stats.ScrubError() == "" {
		t.Fatal("no scrub error recorded")
	}

	// Heal: the triggered reload refuses the corrupt generation, cold-
	// rebuilds, rewrites the snapshot, and swaps.
	waitLong(t, "heal", func() bool { return !stats.Degraded.Load() && srv.Swaps() >= 1 })
	if got := store.Status(digest); got != ribsnap.GenPromoted {
		t.Fatalf("post-heal manifest status = %v, want promoted (rewrite + promote)", got)
	}
	if stats.ScrubError() != "" {
		t.Fatalf("scrub error survived the heal: %q", stats.ScrubError())
	}

	// A while longer under load on the healed generation.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stopLoad)
	cancel()
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d queries failed during the corruption/heal cycle",
			failures.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("load generator ran no queries")
	}
	if !log.contains("scrub: corruption on live generation") {
		t.Fatalf("no corruption event: %v", log.msgs)
	}
	if !log.contains("swapped in generation") {
		t.Fatalf("no reload swap event: %v", log.msgs)
	}
}

// TestScrubSkipsColdGeneration: a mapping-free generation has no
// backing file; the scrubber must idle, not error.
func TestScrubSkipsColdGeneration(t *testing.T) {
	dir, window := writeWorld(t, 1)
	g, err := Load(dir, LoadOptions{Window: window}) // no store, no snapshot: cold
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g)
	sc := NewScrubber(srv, ScrubConfig{Interval: time.Millisecond, PassInterval: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = sc.Run(ctx)
	if srv.Stats().CorruptTotal.Load() != 0 || srv.Stats().Degraded.Load() {
		t.Fatal("cold generation scrubbing must be a no-op")
	}
}
