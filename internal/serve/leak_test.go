package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"dropscope/internal/ribsnap"
)

// settleGoroutines polls until the goroutine count is back within
// tolerance of the baseline, failing with a stack dump if it never
// settles — the leak signature this suite exists to catch.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const tolerance = 3 // net/http background readers wind down lazily
	deadline := time.Now().Add(15 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+tolerance {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines never returned to baseline: %d now vs %d before\n%s",
				n, baseline, buf)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// drainRetired polls until every retired generation reaches refcount
// zero and refuses new pins with ErrClosed.
func drainRetired(t *testing.T, retired []*Generation) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for i, g := range retired {
		for g.snap.Refs() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("retired generation %d still holds %d refs", i, g.snap.Refs())
			}
			time.Sleep(time.Millisecond)
		}
		if err := g.Acquire(); !errors.Is(err, ribsnap.ErrClosed) {
			t.Fatalf("retired generation %d: Acquire = %v, want ErrClosed", i, err)
		}
	}
}

// TestGenerationLifecycleLeak is the leak acceptance test: drive
// normal, panicking, and client-aborted requests over a real listener,
// across several generation swaps, and require that (a) every retired
// snapshot drains to refcount zero — no request path may leak a pin —
// and (b) the goroutine count returns to baseline once the server and
// clients shut down.
func TestGenerationLifecycleLeak(t *testing.T) {
	dirA, dirB, window := swapWorlds(t)
	baseline := runtime.NumGoroutine()

	srv := New(loadDir(t, dirA, window))
	m := Wrap(srv, MiddlewareConfig{RequestTimeout: 2 * time.Second})
	srv.testHook = func(r *http.Request) {
		switch r.URL.Path {
		case "/v1/panic":
			panic("leak test panic")
		case "/v1/stall":
			// Hangs until the client gives up: the aborted-request path.
			<-r.Context().Done()
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := NewHTTPServer(m, HTTPConfig{})
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	get := func(path string, wantCode int) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
	abort := func(path string) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, "GET", base+path, nil)
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}

	const swapsWanted = 3
	var retired []*Generation
	for epoch := 0; epoch <= swapsWanted; epoch++ {
		g := srv.Generation()
		day := window.First.String()
		for i := 0; i < 20; i++ {
			get(fmt.Sprintf("/v1/visibility?prefix=%s&day=%s",
				escapePrefix(g.samples[i%len(g.samples)]), day), 200)
		}
		for i := 0; i < 3; i++ {
			get("/v1/panic", 500)
			abort("/v1/stall")
		}
		if epoch < swapsWanted {
			dir := dirB
			if epoch%2 == 1 {
				dir = dirA
			}
			retired = append(retired, srv.Swap(loadDir(t, dir, window)))
		}
	}
	if got := srv.Stats().Panics.Load(); got != 3*(swapsWanted+1) {
		t.Fatalf("panics counter %d, want %d", got, 3*(swapsWanted+1))
	}

	drainRetired(t, retired)

	// Tear everything down; the goroutine population must recover.
	httpSrv.Close()
	tr.CloseIdleConnections()
	settleGoroutines(t, baseline)
}
