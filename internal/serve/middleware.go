package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Middleware is the robustness layer wrapped around a Server: drain
// gating, admission control, panic isolation, and per-request
// deadlines. The point-query path through it stays allocation-free
// (TestPointHandlerAllocs runs with the middleware installed); only
// queued, shed, slow-endpoint, and failure paths pay extra.
//
// Layering, outermost first:
//
//  1. panic recovery — a panicking handler answers 500 and increments
//     the panics counter. The generation refcount is released by the
//     Server's own deferred Release during unwind, before recovery
//     runs, so a panic can never wedge a retired generation's munmap.
//  2. drain — once StartDrain is called, every new request (including
//     /healthz, so load balancers eject the instance) answers 503
//     while requests already admitted run to completion.
//  3. admission — bounded inflight plus a short bounded wait queue;
//     past both, the request is shed with 503 + Retry-After.
//     /healthz and /metrics bypass the gate: overload must never make
//     the daemon unobservable.
//  4. deadline — the allocating endpoints (origins, figures) run under
//     a context deadline and a per-request connection write deadline.
//     The point queries are CPU-bound and microsecond-scale by
//     construction (0 allocs/op, no I/O, no locks beyond the refcount),
//     so their latency bound is the admission queue wait plus the
//     server's global WriteTimeout; arming a context for them would
//     cost allocations for a deadline that cannot bind.
type Middleware struct {
	srv        *Server
	gate       *Gate
	stats      *Stats
	timeout    time.Duration
	floor      time.Duration
	retryAfter string
	draining   chan struct{} // closed by StartDrain
}

// MiddlewareConfig parameterizes Wrap. Zero values take defaults: the
// GateConfig defaults, a 5s request timeout, and a 1s Retry-After hint.
type MiddlewareConfig struct {
	Gate GateConfig
	// RequestTimeout bounds the allocating endpoints' handlers via
	// context and connection write deadline. Negative disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with shed responses.
	RetryAfter time.Duration
	// ServiceFloor, when positive, holds every admitted query request in
	// the gate for at least this long. Measurement only (the -overload
	// load runs): the synthetic archive's point queries answer in under
	// a microsecond on loopback, so no realistic client count can
	// saturate the gate; the floor stands in for the service time of a
	// production query against a full-scale archive, making shed rate
	// and admitted-p99 measurements meaningful. Never set it on a real
	// daemon.
	ServiceFloor time.Duration
}

// Wrap installs the robustness middleware over srv, sharing its Stats.
func Wrap(srv *Server, cfg MiddlewareConfig) *Middleware {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	return &Middleware{
		srv:        srv,
		gate:       NewGate(cfg.Gate, srv.stats),
		stats:      srv.stats,
		timeout:    cfg.RequestTimeout,
		floor:      cfg.ServiceFloor,
		retryAfter: strconv.Itoa(int(cfg.RetryAfter.Round(time.Second) / time.Second)),
		draining:   make(chan struct{}),
	}
}

// Server returns the wrapped query server.
func (m *Middleware) Server() *Server { return m.srv }

// Gate returns the admission gate, for tests and wiring.
func (m *Middleware) Gate() *Gate { return m.gate }

// StartDrain flips the middleware into drain mode: every subsequent
// request answers 503 while already-admitted requests finish. Safe to
// call more than once.
func (m *Middleware) StartDrain() {
	select {
	case <-m.draining:
	default:
		close(m.draining)
	}
}

// Draining reports whether StartDrain has been called.
func (m *Middleware) Draining() bool {
	select {
	case <-m.draining:
		return true
	default:
		return false
	}
}

var (
	shedBody  = []byte("{\"error\":\"overloaded\"}\n")
	drainBody = []byte("{\"error\":\"draining\"}\n")
	panicBody = []byte("{\"error\":\"internal error\"}\n")
)

// ServeHTTP runs one request through drain, admission, deadline, and
// the query server, with panic recovery around all of it.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			// The panicking handler's deferred refcount Release already
			// ran during unwind; all that is left is accounting and the
			// client's 500. A partially written response cannot be
			// rewritten — the handlers buffer and write once, so in
			// practice nothing has been sent.
			m.stats.Panics.Add(1)
			h := w.Header()
			setHeader(h, "Content-Type", jsonContentType)
			w.WriteHeader(http.StatusInternalServerError)
			w.Write(panicBody)
		}
	}()
	if m.Draining() {
		m.reject(w, drainBody)
		return
	}
	path := r.URL.Path
	if path == "/healthz" || path == "/metrics" {
		m.srv.ServeHTTP(w, r)
		return
	}
	if !m.gate.Enter(r.Context()) {
		m.reject(w, shedBody)
		return
	}
	defer m.gate.Leave()
	if m.floor > 0 {
		time.Sleep(m.floor)
	}
	if m.timeout > 0 && slowEndpoint(path) {
		// Belt and braces: a context deadline the handler can consult,
		// and a connection write deadline so even a handler that never
		// looks at the context cannot hold the connection past the
		// timeout. Both allocate; slow endpoints already do.
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(m.timeout))
		ctx, cancel := context.WithTimeout(r.Context(), m.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	m.srv.ServeHTTP(w, r)
}

// reject sheds one request with 503 + Retry-After. Kept cheap on
// purpose: under overload the shed path is the hot path.
func (m *Middleware) reject(w http.ResponseWriter, body []byte) {
	m.stats.Shed.Add(1)
	h := w.Header()
	setHeader(h, "Content-Type", jsonContentType)
	setHeader(h, "Retry-After", m.retryAfter)
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write(body)
}

// slowEndpoint reports whether the path may run allocating,
// non-constant-time work and therefore runs under a request deadline.
func slowEndpoint(path string) bool {
	switch path {
	case "/v1/visibility", "/v1/rov", "/v1/drop":
		return false
	}
	return true
}
