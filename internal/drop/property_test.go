package drop

import (
	"math/rand"
	"testing"

	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// TestListingsReconstructSchedule drives the archive with a random
// add/remove schedule and verifies Listings() recovers exactly the
// schedule's intervals.
func TestListingsReconstructSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	day0 := timex.MustParseDay("2020-01-01")

	for trial := 0; trial < 25; trial++ {
		type interval struct {
			p          netx.Prefix
			add, del   timex.Day
			hasRemoved bool
		}
		// Build non-overlapping stays for each of a set of prefixes.
		var want []interval
		prefixes := make([]netx.Prefix, 12)
		for i := range prefixes {
			prefixes[i] = netx.PrefixFrom(netx.AddrFrom4(10, byte(trial), byte(i), 0), 24)
		}
		for _, p := range prefixes {
			cursor := day0 + timex.Day(rng.Intn(10))
			stays := 1 + rng.Intn(3)
			for s := 0; s < stays; s++ {
				add := cursor + timex.Day(rng.Intn(20))
				dur := timex.Day(1 + rng.Intn(30))
				iv := interval{p: p, add: add, del: add + dur, hasRemoved: true}
				if s == stays-1 && rng.Intn(2) == 0 {
					iv.hasRemoved = false // still listed at the end
				}
				want = append(want, iv)
				cursor = iv.del + 1
				if !iv.hasRemoved {
					break
				}
			}
		}

		// Materialize snapshots on every day membership changes.
		changes := make(map[timex.Day]bool)
		for _, iv := range want {
			changes[iv.add] = true
			if iv.hasRemoved {
				changes[iv.del] = true
			}
		}
		var days []timex.Day
		for d := range changes {
			days = append(days, d)
		}
		// Sort days.
		for i := 1; i < len(days); i++ {
			for j := i; j > 0 && days[j] < days[j-1]; j-- {
				days[j], days[j-1] = days[j-1], days[j]
			}
		}

		a := NewArchive()
		for _, d := range days {
			var entries []Entry
			for _, iv := range want {
				if d >= iv.add && (!iv.hasRemoved || d < iv.del) {
					entries = append(entries, Entry{Prefix: iv.p})
				}
			}
			if err := a.AddSnapshot(d, entries); err != nil {
				t.Fatal(err)
			}
		}

		got := a.Listings()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d listings, want %d", trial, len(got), len(want))
		}
		// Index expected intervals by (prefix, add).
		type key struct {
			p   netx.Prefix
			add timex.Day
		}
		wantBy := make(map[key]interval)
		for _, iv := range want {
			wantBy[key{iv.p, iv.add}] = iv
		}
		for _, l := range got {
			iv, ok := wantBy[key{l.Prefix, l.Added}]
			if !ok {
				t.Fatalf("trial %d: unexpected listing %+v", trial, l)
			}
			if l.HasRemoved != iv.hasRemoved {
				t.Fatalf("trial %d: %v removal flag = %v, want %v", trial, l.Prefix, l.HasRemoved, iv.hasRemoved)
			}
			if iv.hasRemoved && l.Removed != iv.del {
				t.Fatalf("trial %d: %v removed %v, want %v", trial, l.Prefix, l.Removed, iv.del)
			}
		}
	}
}
