// Package drop implements the Spamhaus DROP ("Don't Route Or Peer") list
// substrate: the published text format, a store of daily snapshots (the
// form the FireHOL archive preserves), and extraction of listing events —
// when each prefix was added and removed — which anchor every analysis in
// the paper.
package drop

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"dropscope/internal/ingest"
	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

// Entry is one line of a DROP snapshot: a prefix and its SBL reference.
type Entry struct {
	Prefix netx.Prefix
	SBLRef string // e.g. "SBL502548"; may be empty
}

// Write emits entries in the published DROP format:
//
//	; Spamhaus DROP List 2019-06-05
//	192.0.2.0/24 ; SBL123456
func Write(w io.Writer, day timex.Day, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; Spamhaus DROP List %s\n", day.String()); err != nil {
		return err
	}
	for _, e := range entries {
		line := e.Prefix.String()
		if e.SBLRef != "" {
			line += " ; " + e.SBLRef
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a DROP snapshot in the published format. Comment lines
// (starting with ';') are skipped. The first malformed line fails the
// parse; use ParseHealth to quarantine bad lines instead.
func Parse(r io.Reader) ([]Entry, error) {
	return parse(r, nil)
}

// ParseHealth is the lenient variant of Parse: a line that does not
// parse is skipped and counted on src rather than failing the snapshot.
// Accepted entries are also counted on src.
func ParseHealth(r io.Reader, src *ingest.Source) ([]Entry, error) {
	return parse(r, src)
}

func parse(r io.Reader, src *ingest.Source) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Entry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		var e Entry
		if i := strings.Index(line, ";"); i >= 0 {
			e.SBLRef = strings.TrimSpace(line[i+1:])
			line = strings.TrimSpace(line[:i])
		}
		p, err := netx.ParsePrefix(line)
		if err != nil {
			if src != nil {
				src.Skip(ingest.BadLine)
				continue
			}
			return nil, fmt.Errorf("drop: line %d: %v", lineNo, err)
		}
		e.Prefix = p
		out = append(out, e)
		if src != nil {
			src.Accept(1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Archive stores daily DROP snapshots and derives listing events.
type Archive struct {
	days  []timex.Day
	byDay map[timex.Day][]Entry

	// Listing events are a pure function of the snapshots, and diffing
	// every consecutive snapshot pair is the dominant cost of a repeat
	// Listings call, so the result is cached until the next AddSnapshot.
	mu          sync.Mutex
	listings    []Listing
	listingsFor int // len(days) the cache was diffed at; -1 = no cache
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{byDay: make(map[timex.Day][]Entry), listingsFor: -1}
}

// AddSnapshot records the DROP list content for one day. Snapshots must
// be added in day order; duplicate days are rejected.
func (a *Archive) AddSnapshot(day timex.Day, entries []Entry) error {
	if _, dup := a.byDay[day]; dup {
		return fmt.Errorf("drop: duplicate snapshot for %v", day)
	}
	if n := len(a.days); n > 0 && day < a.days[n-1] {
		return fmt.Errorf("drop: snapshot %v out of order", day)
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	a.days = append(a.days, day)
	a.byDay[day] = cp
	a.mu.Lock()
	a.listingsFor = -1
	a.mu.Unlock()
	return nil
}

// Days returns the snapshot days in order.
func (a *Archive) Days() []timex.Day { return a.days }

// Snapshot returns the entries for the given day, if a snapshot exists.
func (a *Archive) Snapshot(day timex.Day) ([]Entry, bool) {
	e, ok := a.byDay[day]
	return e, ok
}

// SnapshotAtOrBefore returns the most recent snapshot at or before day.
func (a *Archive) SnapshotAtOrBefore(day timex.Day) ([]Entry, timex.Day, bool) {
	i := sort.Search(len(a.days), func(i int) bool { return a.days[i] > day })
	if i == 0 {
		return nil, 0, false
	}
	d := a.days[i-1]
	return a.byDay[d], d, true
}

// ListedAt reports whether p appeared in the snapshot effective on day.
func (a *Archive) ListedAt(p netx.Prefix, day timex.Day) bool {
	entries, _, ok := a.SnapshotAtOrBefore(day)
	if !ok {
		return false
	}
	for _, e := range entries {
		if e.Prefix == p {
			return true
		}
	}
	return false
}

// Listing is one prefix's stay on the DROP list.
type Listing struct {
	Prefix     netx.Prefix
	SBLRef     string
	Added      timex.Day
	Removed    timex.Day // first snapshot day without the prefix
	HasRemoved bool
}

// Listings diffs consecutive snapshots into per-prefix listing events,
// ordered by (Added, Prefix). A prefix relisted after removal yields a
// second Listing. Prefixes present in the first snapshot are treated as
// added on that day. The diff is cached between AddSnapshot calls; the
// returned slice is the caller's to keep.
func (a *Archive) Listings() []Listing {
	a.mu.Lock()
	if a.listingsFor != len(a.days) {
		a.listings = a.diffListings()
		a.listingsFor = len(a.days)
	}
	cached := a.listings
	a.mu.Unlock()
	out := make([]Listing, len(cached))
	copy(out, cached)
	return out
}

func (a *Archive) diffListings() []Listing {
	type open struct {
		added  timex.Day
		sblRef string
	}
	current := make(map[netx.Prefix]open)
	var out []Listing
	for _, day := range a.days {
		next := make(map[netx.Prefix]string, len(a.byDay[day]))
		for _, e := range a.byDay[day] {
			next[e.Prefix] = e.SBLRef
		}
		// Removals.
		for p, o := range current {
			if _, still := next[p]; !still {
				out = append(out, Listing{Prefix: p, SBLRef: o.sblRef, Added: o.added, Removed: day, HasRemoved: true})
				delete(current, p)
			}
		}
		// Additions.
		for p, ref := range next {
			if _, already := current[p]; !already {
				current[p] = open{added: day, sblRef: ref}
			}
		}
	}
	for p, o := range current {
		out = append(out, Listing{Prefix: p, SBLRef: o.sblRef, Added: o.added})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Added != out[j].Added {
			return out[i].Added < out[j].Added
		}
		return out[i].Prefix.Compare(out[j].Prefix) < 0
	})
	return out
}
