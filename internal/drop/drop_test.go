package drop

import (
	"bytes"
	"strings"
	"testing"

	"dropscope/internal/netx"
	"dropscope/internal/timex"
)

var d0 = timex.MustParseDay("2019-06-05")

func e(pfx, ref string) Entry {
	return Entry{Prefix: netx.MustParsePrefix(pfx), SBLRef: ref}
}

func TestWriteParseRoundTrip(t *testing.T) {
	entries := []Entry{
		e("192.0.2.0/24", "SBL123456"),
		e("10.0.0.0/8", ""),
	}
	var buf bytes.Buffer
	if err := Write(&buf, d0, entries); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "; Spamhaus DROP List 2019-06-05") {
		t.Errorf("header: %q", buf.String())
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Errorf("round trip: %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("not-a-prefix ; SBL1\n")); err == nil {
		t.Error("bad prefix should fail")
	}
	got, err := Parse(strings.NewReader("; just a comment\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("comment-only: %v %v", got, err)
	}
}

func TestArchiveOrdering(t *testing.T) {
	a := NewArchive()
	if err := a.AddSnapshot(d0, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSnapshot(d0, nil); err == nil {
		t.Error("duplicate day should fail")
	}
	if err := a.AddSnapshot(d0-1, nil); err == nil {
		t.Error("out-of-order day should fail")
	}
}

func TestListingsLifecycle(t *testing.T) {
	a := NewArchive()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	p1 := e("192.0.2.0/24", "SBL1")
	p2 := e("198.51.100.0/24", "SBL2")
	must(a.AddSnapshot(d0, []Entry{p1}))
	must(a.AddSnapshot(d0+1, []Entry{p1, p2}))
	must(a.AddSnapshot(d0+2, []Entry{p2}))     // p1 removed
	must(a.AddSnapshot(d0+3, []Entry{p1, p2})) // p1 relisted

	ls := a.Listings()
	if len(ls) != 3 {
		t.Fatalf("listings = %+v", ls)
	}
	// Sorted by added day: p1@d0, p2@d0+1, p1@d0+3.
	if ls[0].Prefix != p1.Prefix || ls[0].Added != d0 || !ls[0].HasRemoved || ls[0].Removed != d0+2 {
		t.Errorf("ls[0] = %+v", ls[0])
	}
	if ls[1].Prefix != p2.Prefix || ls[1].Added != d0+1 || ls[1].HasRemoved {
		t.Errorf("ls[1] = %+v", ls[1])
	}
	if ls[2].Prefix != p1.Prefix || ls[2].Added != d0+3 || ls[2].HasRemoved {
		t.Errorf("ls[2] = %+v", ls[2])
	}
	if ls[0].SBLRef != "SBL1" {
		t.Errorf("SBLRef = %q", ls[0].SBLRef)
	}
}

func TestListedAtAndSnapshotLookup(t *testing.T) {
	a := NewArchive()
	p := e("192.0.2.0/24", "SBL1")
	if err := a.AddSnapshot(d0, []Entry{p}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSnapshot(d0+10, nil); err != nil {
		t.Fatal(err)
	}
	if a.ListedAt(p.Prefix, d0-1) {
		t.Error("listed before first snapshot")
	}
	if !a.ListedAt(p.Prefix, d0) || !a.ListedAt(p.Prefix, d0+5) {
		t.Error("listed during stay (snapshot persistence between days)")
	}
	if a.ListedAt(p.Prefix, d0+10) {
		t.Error("listed after removal snapshot")
	}
	if _, ok := a.Snapshot(d0 + 5); ok {
		t.Error("no exact snapshot at d0+5")
	}
	if _, day, ok := a.SnapshotAtOrBefore(d0 + 5); !ok || day != d0 {
		t.Errorf("SnapshotAtOrBefore = %v %v", day, ok)
	}
	if got := len(a.Days()); got != 2 {
		t.Errorf("Days = %d", got)
	}
}

func TestListingsEmptyArchive(t *testing.T) {
	if got := NewArchive().Listings(); len(got) != 0 {
		t.Errorf("empty archive listings = %v", got)
	}
}
