package drop

import (
	"bytes"
	"strings"
	"testing"

	"dropscope/internal/timex"
)

func FuzzParse(f *testing.F) {
	f.Add("; Spamhaus DROP List 2019-06-05\n192.0.2.0/24 ; SBL123\n10.0.0.0/8\n")
	f.Add("")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, s string) {
		entries, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, timex.MustParseDay("2020-01-01"), entries); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil || len(back) != len(entries) {
			t.Fatalf("round trip: %v (%d -> %d)", err, len(entries), len(back))
		}
	})
}
