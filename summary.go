package dropscope

import (
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/sbl"
)

// Summary flattens the headline numbers of a Results into a JSON-friendly
// structure for dashboards and regression tracking. Rates are fractions
// in [0, 1]; address space is in /8 equivalents of the scaled world.
type Summary struct {
	TotalListings  int            `json:"total_listings"`
	WithSBLRecord  int            `json:"with_sbl_record"`
	MultiLabel     int            `json:"multi_label"`
	CategoryCounts map[string]int `json:"category_counts"`

	WithdrawnWithin30    float64 `json:"withdrawn_within_30d"`
	WithdrawnHijacked    float64 `json:"withdrawn_hijacked"`
	WithdrawnUnallocated float64 `json:"withdrawn_unallocated"`
	FilteringPeers       int     `json:"filtering_peers"`

	SignRateNever   float64            `json:"sign_rate_never_on_drop"`
	SignRateRemoved float64            `json:"sign_rate_removed"`
	SignRatePresent float64            `json:"sign_rate_present"`
	SignRateByRIR   map[string]float64 `json:"sign_rate_never_by_rir"`

	IRRCoveredFraction      float64 `json:"irr_covered_fraction"`
	IRRCoveredSpaceFraction float64 `json:"irr_covered_space_fraction"`
	HijackerASNObjects      int     `json:"hijacker_asn_objects"`
	DistinctHijackerASNs    int     `json:"distinct_hijacker_asns"`

	PreSignedHijacks int    `json:"pre_signed_hijacks"`
	RPKIValidHijack  bool   `json:"rpki_valid_hijack_found"`
	CasePrefix       string `json:"case_prefix,omitempty"`

	PercentRoutedStart float64 `json:"pct_signed_space_routed_start"`
	PercentRoutedEnd   float64 `json:"pct_signed_space_routed_end"`
	SignedUnrouted8s   float64 `json:"signed_unrouted_slash8_eq"`

	UnallocatedListings int `json:"unallocated_listings"`
	FilterableAtEnd     int `json:"as0_filterable_at_end"`

	ROVHijacksAccepted int `json:"rov_hijacks_accepted"`
	ROVHijacksBlocked  int `json:"rov_hijacks_blocked"`
	PathEndCaught      int `json:"pathend_hijacks_caught"`
	SerialHijackers    int `json:"serial_hijacker_profiles"`

	// DataHealth is present only when lenient ingest saw damage, so
	// summaries of clean runs are unchanged byte for byte.
	DataHealth *HealthSummary `json:"data_health,omitempty"`
}

// HealthSummary is the JSON view of a lenient run's ingest accounting.
// Sources lists only damaged or quarantined sources; the totals cover
// every source.
type HealthSummary struct {
	TotalRecords uint64         `json:"total_records"`
	TotalSkipped uint64         `json:"total_skipped"`
	Quarantined  []string       `json:"quarantined,omitempty"`
	Sources      []SourceHealth `json:"sources"`
}

// SourceHealth is one damaged source's accounting.
type SourceHealth struct {
	Name        string  `json:"name"`
	Records     uint64  `json:"records"`
	Skipped     uint64  `json:"skipped"`
	Coverage    float64 `json:"coverage"`
	Quarantined bool    `json:"quarantined,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// Summary computes the flat summary from full results.
func (r Results) Summary() Summary {
	s := Summary{
		TotalListings:  r.Fig1.TotalPrefixes,
		WithSBLRecord:  r.Fig1.WithRecord,
		MultiLabel:     r.Fig1.OverlapPrefixes,
		CategoryCounts: make(map[string]int),

		WithdrawnWithin30:    r.Fig2.WithdrawnWithin30,
		WithdrawnHijacked:    r.Fig2.WithdrawnByCategory[sbl.Hijacked],
		WithdrawnUnallocated: r.Fig2.WithdrawnByCategory[sbl.Unallocated],
		FilteringPeers:       len(r.Fig2.FilteringPeers),

		SignRateByRIR: make(map[string]float64),

		IRRCoveredFraction:      r.Sec5.CoveredFraction,
		IRRCoveredSpaceFraction: r.Sec5.CoveredSpaceFraction,
		HijackerASNObjects:      r.Sec5.WithHijackerASNObject,
		DistinctHijackerASNs:    r.Sec5.DistinctHijackerASNs,

		PreSignedHijacks: len(r.Fig4.PreSigned),

		UnallocatedListings: len(r.Fig6.Events),
		FilterableAtEnd:     r.Fig6.FilterableAtEnd,

		ROVHijacksAccepted: r.ROV.HijacksAccepted,
		ROVHijacksBlocked:  r.ROV.HijacksBlocked,
		PathEndCaught:      r.PathEnd.HijacksInvalid,
		SerialHijackers:    len(r.Hijackers),
	}
	for _, row := range r.Fig1.Rows {
		s.CategoryCounts[row.Category.Name()] = row.Exclusive + row.Additional
	}
	never, removed, present := r.Table1.Overall()
	s.SignRateNever = never.Rate()
	s.SignRateRemoved = removed.Rate()
	s.SignRatePresent = present.Rate()
	for _, rir := range rirstats.AllRIRs {
		s.SignRateByRIR[string(rir)] = r.Table1.Never[rir].Rate()
	}
	for _, h := range r.Fig4.PreSigned {
		if h.RPKIValidHijack {
			s.RPKIValidHijack = true
			s.CasePrefix = h.Prefix.String()
		}
	}
	if n := len(r.Fig5.Samples); n > 0 {
		s.PercentRoutedStart = r.Fig5.Samples[0].PercentRouted()
		s.PercentRoutedEnd = r.Fig5.Samples[n-1].PercentRouted()
		s.SignedUnrouted8s = netx.SlashEquivalents(r.Fig5.Samples[n-1].SignedUnrouted, 8)
	}
	if !r.Health.Clean() {
		hs := &HealthSummary{
			TotalRecords: r.Health.TotalRecords,
			TotalSkipped: r.Health.TotalSkipped,
			Quarantined:  r.Health.Quarantined,
		}
		for _, src := range r.Health.Sources {
			if src.Skips.Total() == 0 && !src.Quarantined {
				continue
			}
			hs.Sources = append(hs.Sources, SourceHealth{
				Name:        src.Name,
				Records:     src.Records,
				Skipped:     src.Skips.Total(),
				Coverage:    src.Coverage,
				Quarantined: src.Quarantined,
				Note:        src.Note,
			})
		}
		s.DataHealth = hs
	}
	return s
}
