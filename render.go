package dropscope

import (
	"fmt"
	"io"
	"sort"

	"dropscope/internal/analysis"
	"dropscope/internal/netx"
	"dropscope/internal/report"
	"dropscope/internal/rirstats"
	"dropscope/internal/sbl"
)

// renderAll writes each section in a fixed order. It reads only the
// Results value — never the pipeline — so it is deterministic over a
// given Results, whether that was produced by the parallel scheduler or
// the serial runner.
func renderAll(w io.Writer, r Results) error {
	renderers := []func(io.Writer, Results) error{
		renderFig1, renderFig2, renderTable1, renderSec5, renderFig4,
		renderFig5, renderFig6, renderFig7, renderTable2,
		renderCounterfactuals,
	}
	for _, fn := range renderers {
		if err := fn(w, r); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	// The data-health section appears only when ingest saw damage, so a
	// lenient run over clean archives renders byte-identically to strict.
	if !r.Health.Clean() {
		if err := renderHealth(w, r); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// renderHealth reports what lenient ingest skipped and quarantined.
// Clean sources are omitted; totals cover every source.
func renderHealth(w io.Writer, r Results) error {
	t := report.NewTable("Data health — lenient ingest",
		"Source", "Records", "Skips", "Coverage", "Status")
	for _, s := range r.Health.Sources {
		if s.Skips.Total() == 0 && !s.Quarantined {
			continue
		}
		status := "degraded"
		if s.Quarantined {
			status = "QUARANTINED"
			if s.Note != "" {
				status += " (" + s.Note + ")"
			}
		}
		t.RawRow(s.Name,
			fmt.Sprint(s.Records),
			s.Skips.String(),
			fmt.Sprintf("%.3f", s.Coverage),
			status,
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "total records: %d; total skipped: %d; quarantined collectors: %d\n",
		r.Health.TotalRecords, r.Health.TotalSkipped, len(r.Health.Quarantined))
	return err
}

func renderFig1(w io.Writer, r Results) error {
	t := report.NewTable("Figure 1 — DROP classification",
		"Category", "Exclusive", "+Shared", "Space(/8 eq)", "Incident pfx")
	for _, row := range r.Fig1.Rows {
		t.RawRow(row.Category.Name(),
			fmt.Sprint(row.Exclusive),
			fmt.Sprint(row.Additional),
			fmt.Sprintf("%.3f", netx.SlashEquivalents(row.AddrSpace, 8)),
			fmt.Sprint(row.IncidentPrefixes),
		)
	}
	t.RawRow("TOTAL",
		fmt.Sprint(r.Fig1.TotalPrefixes), "",
		fmt.Sprintf("%.3f", netx.SlashEquivalents(r.Fig1.TotalSpace, 8)), "")
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "with SBL record: %d; multi-label: %d; incident space share: %.1f%%\n",
		r.Fig1.WithRecord, r.Fig1.OverlapPrefixes, r.Fig1.IncidentSpaceShare*100)
	return err
}

func renderFig2(w io.Writer, r Results) error {
	if _, err := fmt.Fprintf(w, "Figure 2 — routing visibility around listing\n"); err != nil {
		return err
	}
	for _, off := range analysis.Fig2Offsets {
		xs := r.Fig2.CDF[off]
		n30 := 0
		for _, x := range xs {
			if x == 0 {
				n30++
			}
		}
		if _, err := fmt.Fprintf(w, "  day %+3d: %d listings, %d unobserved\n", off, len(xs), n30); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "withdrawn within 30 days: %.1f%% (HJ %.1f%%, UA %.1f%%)\n",
		r.Fig2.WithdrawnWithin30*100,
		r.Fig2.WithdrawnByCategory[sbl.Hijacked]*100,
		r.Fig2.WithdrawnByCategory[sbl.Unallocated]*100); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "filtering peers detected: %d\n", len(r.Fig2.FilteringPeers)); err != nil {
		return err
	}
	for _, ref := range r.Fig2.FilteringPeers {
		if _, err := fmt.Fprintf(w, "  %s carries %.1f%% of listed prefixes\n",
			ref, r.Fig2.PeerCarryFraction[ref]*100); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "deallocation: MH space %.1f%%; removed listings %.1f%% (within a week: %.1f%%)\n",
		r.Dealloc.MalHostingSpaceDealloc*100, r.Dealloc.RemovedDealloc*100,
		r.Dealloc.RemovedWithinWeekOfDealloc*100); err != nil {
		return err
	}
	// Left panel: visibility CDF 30 days after listing.
	_, err := io.WriteString(w, report.CDF(
		"CDF of listings by fraction of peers observing, 30 days after listing",
		"fraction of peers", r.Fig2.CDF[30], 60, 8))
	return err
}

func renderTable1(w io.Writer, r Results) error {
	t := report.NewTable("Table 1 — RPKI signing rate of prefixes without a ROA",
		"Region", "Never on DROP", "Removed from DROP", "Present on DROP")
	cell := func(c analysis.Table1Cell) string {
		return fmt.Sprintf("%.1f%% of %d", c.Rate()*100, c.Total)
	}
	for _, rir := range rirstats.AllRIRs {
		t.RawRow(string(rir), cell(r.Table1.Never[rir]), cell(r.Table1.Removed[rir]), cell(r.Table1.Present[rir]))
	}
	never, removed, present := r.Table1.Overall()
	t.RawRow("Overall", cell(never), cell(removed), cell(present))
	if err := t.Render(w); err != nil {
		return err
	}
	tot := r.Table1.RemovedSignedDifferentASN + r.Table1.RemovedSignedSameASN + r.Table1.RemovedSignedUnrouted
	if tot == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w, "removed+signed: %.1f%% different ASN, %.1f%% same ASN, %.1f%% unrouted at listing\n",
		100*float64(r.Table1.RemovedSignedDifferentASN)/float64(tot),
		100*float64(r.Table1.RemovedSignedSameASN)/float64(tot),
		100*float64(r.Table1.RemovedSignedUnrouted)/float64(tot))
	return err
}

func renderSec5(w io.Writer, r Results) error {
	s := r.Sec5
	if _, err := fmt.Fprintf(w, "Section 5 / Figure 3 — IRR effectiveness\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "listings with route objects ≤7d pre-listing: %d (%.1f%% of listings, %.1f%% of space)\n",
		s.CoveredListings, s.CoveredFraction*100, s.CoveredSpaceFraction*100)
	fmt.Fprintf(w, "objects created ≤1 month before listing: %.1f%%; removed ≤1 month after: %.1f%%\n",
		s.CreatedMonthBefore*100, s.RemovedMonthAfter*100)
	fmt.Fprintf(w, "named hijacks: %d; with hijacker-ASN object: %d; without/different: %d\n",
		s.NamedHijacks, s.WithHijackerASNObject, s.WithoutOrDifferent)
	fmt.Fprintf(w, "distinct hijacker ASNs in objects: %d; top-3 ORG-IDs cover %d; pre-existing entries: %d\n",
		s.DistinctHijackerASNs, s.TopOrgsCover, s.PreexistingIRREntries)
	fmt.Fprintf(w, "common transit %s on %d prefixes of one ORG; late IRR creations: %d; unallocated with object: %d\n",
		s.CommonTransit, s.CommonTransitPrefixes, s.LateCreations, s.UnallocatedWithObject)

	// Figure 3 CDF.
	xs := make([]float64, len(s.DaysToBGP))
	for i, d := range s.DaysToBGP {
		xs[i] = float64(d)
	}
	if _, err := io.WriteString(w, report.CDF("Figure 3 — days from IRR object creation to BGP appearance",
		"days", xs, 60, 10)); err != nil {
		return err
	}
	return nil
}

func renderFig4(w io.Writer, r Results) error {
	f := r.Fig4
	fmt.Fprintf(w, "Figure 4 / §6.1 — RPKI-valid hijack case study\n")
	fmt.Fprintf(w, "hijacked listings: %d; RPKI-signed before listing: %d\n",
		f.HijackedListings, len(f.PreSigned))
	for _, h := range f.PreSigned {
		kind := "attacker-controlled ROA"
		if h.RPKIValidHijack {
			kind = "RPKI-VALID HIJACK"
		}
		fmt.Fprintf(w, "  %s listed %s: %s\n", h.Prefix, h.Listed, kind)
	}
	if len(f.Rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "case: %s origin %s via transit %s; %d siblings (%d listed)\n",
		f.CasePrefix, f.CaseOrigin, f.CaseTransit, f.SiblingCount, f.SiblingsListed)

	var min, max float64
	first := true
	var rows []report.GanttRow
	for _, row := range f.Rows {
		gr := report.GanttRow{Label: row.Prefix.String()}
		for _, sp := range row.Spans {
			from, to := float64(sp.From), float64(sp.To)
			if first || from < min {
				min = from
			}
			if first || to > max {
				max = to
			}
			first = false
			gr.Spans = append(gr.Spans, report.GanttSpan{
				From: from, To: to,
				Note: fmt.Sprintf("%s via %s", sp.Origin, sp.Transit),
			})
		}
		rows = append(rows, gr)
	}
	_, err := io.WriteString(w, report.Gantt("origination timeline", min, max, rows, 60))
	return err
}

func renderFig5(w io.Writer, r Results) error {
	f := r.Fig5
	var signed, routed, unroutedNoROA, pct []float64
	for _, s := range f.Samples {
		signed = append(signed, netx.SlashEquivalents(s.ROASpace, 8))
		routed = append(routed, netx.SlashEquivalents(s.RoutedROASpace, 8))
		unroutedNoROA = append(unroutedNoROA, netx.SlashEquivalents(s.AllocatedUnroutedNoROA, 8))
		pct = append(pct, s.PercentRouted()*100)
	}
	firstDay := f.Samples[0].Day.String()
	lastDay := f.Samples[len(f.Samples)-1].Day.String()
	if _, err := io.WriteString(w, report.TimeSeries(
		"Figure 5 — routing status of ROAs (/8 equivalents, scaled world)",
		[2]string{firstDay, lastDay},
		[]report.Series{
			{Name: "signed space", Points: signed},
			{Name: "signed+routed", Points: routed},
			{Name: "alloc unrouted no-ROA", Points: unroutedNoROA},
		}, 68, 12)); err != nil {
		return err
	}
	fmt.Fprintf(w, "percent of signed space routed: %.1f%% -> %.1f%%\n", pct[0], pct[len(pct)-1])
	fmt.Fprintf(w, "signed-unrouted at end: %.3f /8 eq\n",
		netx.SlashEquivalents(f.Samples[len(f.Samples)-1].SignedUnrouted, 8))
	var tot uint64
	for _, v := range f.UnroutedNoROAByRIR {
		tot += v
	}
	for _, rir := range rirstats.AllRIRs {
		if v := f.UnroutedNoROAByRIR[rir]; v > 0 && tot > 0 {
			fmt.Fprintf(w, "  alloc-unrouted-unsigned %s: %.1f%%\n", rir, 100*float64(v)/float64(tot))
		}
	}
	for _, h := range f.TopSignedUnroutedHoldings {
		fmt.Fprintf(w, "  top signed-unrouted holding %s: %.3f /8 eq\n", h.ASN, netx.SlashEquivalents(h.Space, 8))
	}
	return nil
}

func renderFig6(w io.Writer, r Results) error {
	f := r.Fig6
	fmt.Fprintf(w, "Figure 6 — unallocated space on DROP\n")
	fmt.Fprintf(w, "events: %d\n", len(f.Events))
	rirs := make([]string, 0, len(f.ByRIR))
	for rir := range f.ByRIR {
		rirs = append(rirs, string(rir))
	}
	sort.Strings(rirs)
	for _, rir := range rirs {
		fmt.Fprintf(w, "  %s: %d\n", rir, f.ByRIR[rirstats.RIR(rir)])
	}
	if f.HasAPNICAS0 {
		fmt.Fprintf(w, "APNIC AS0 policy detected: %s\n", f.APNICAS0Day)
	}
	if f.HasLACNICAS0 {
		fmt.Fprintf(w, "LACNIC AS0 policy detected: %s\n", f.LACNICAS0Day)
	}
	fmt.Fprintf(w, "routed prefixes AS0 TALs would filter at window end: %d\n", f.FilterableAtEnd)
	return nil
}

func renderFig7(w io.Writer, r Results) error {
	if len(r.Fig7) == 0 {
		return nil
	}
	var series []report.Series
	for _, rir := range rirstats.AllRIRs {
		s := report.Series{Name: string(rir)}
		for _, sample := range r.Fig7 {
			s.Points = append(s.Points, float64(sample.Pools[rir])/1e6)
		}
		series = append(series, s)
	}
	_, err := io.WriteString(w, report.TimeSeries(
		"Figure 7 — RIR free pools (millions of addresses)",
		[2]string{r.Fig7[0].Day.String(), r.Fig7[len(r.Fig7)-1].Day.String()},
		series, 68, 12))
	return err
}

func renderTable2(w io.Writer, r Results) error {
	t := report.NewTable("Table 2 / Appendix A — SBL keyword classification", "Outcome", "Records")
	t.RawRow("one category", fmt.Sprint(r.Table2.OneCategory))
	t.RawRow("multi-label", fmt.Sprint(r.Table2.MultiLabel))
	t.RawRow("needs manual review", fmt.Sprint(r.Table2.NeedsReview))
	t.RawRow("naming a malicious ASN", fmt.Sprint(r.Table2.WithASN))
	t.RawRow("total", fmt.Sprint(r.Table2.Records))
	return t.Render(w)
}

func renderCounterfactuals(w io.Writer, r Results) error {
	fmt.Fprintf(w, "Counterfactuals — what the defenses could have stopped\n")
	rov := r.ROV
	fmt.Fprintf(w, "universal ROV on hijacked listings: %d blocked (invalid), %d accepted (RPKI-valid!),\n",
		rov.HijacksBlocked, rov.HijacksAccepted)
	fmt.Fprintf(w, "  %d uncovered (no ROA), %d unrouted at listing\n",
		rov.HijacksUncovered, rov.HijacksUnrouted)
	fmt.Fprintf(w, "squats: %d/%d blocked with production TALs; %d/%d with the RIR AS0 TALs loaded\n",
		rov.SquatsBlockedDefault, rov.SquatsTotal, rov.SquatsBlockedWithAS0, rov.SquatsTotal)
	a := r.AS0WhatIf
	fmt.Fprintf(w, "AS0 remediation: %.4f /8 eq of signed-unrouted forgeable space;\n",
		netx.SlashEquivalents(a.VulnerableSpace, 8))
	fmt.Fprintf(w, "  top-3 holders adopting AS0 removes %.1f%%; %.4f /8 eq remains unsigned+unrouted\n",
		pct(a.RemediedByTop3, a.VulnerableSpace), netx.SlashEquivalents(a.UnsignedUnroutedSpace, 8))
	m := r.MaxLength
	fmt.Fprintf(w, "maxLength audit: %d/%d ROAs loose; %d forgeable sub-prefix surfaces (%.4f /8 eq)\n",
		m.LooseMaxLength, m.ROAs, m.VulnerableLoose, netx.SlashEquivalents(m.ForgeableSpace, 8))
	pe := r.PathEnd
	fmt.Fprintf(w, "path-end validation (%d records enrolled): %d hijacks caught, %d missed,\n",
		pe.RecordsBuilt, pe.HijacksInvalid, pe.HijacksValid)
	fmt.Fprintf(w, "  %d silent (abandoned origins), case-study hijack caught: %v\n",
		pe.HijacksNotFound, pe.CaseStudyCaught)

	if len(r.Hijackers) > 0 {
		fmt.Fprintf(w, "serial-hijacker profiles (≥3 prefixes, ≥50%% listed, brief announcements):\n")
		for i, h := range r.Hijackers {
			if i == 8 {
				fmt.Fprintf(w, "  ... and %d more\n", len(r.Hijackers)-8)
				break
			}
			fmt.Fprintf(w, "  %-9s %3d prefixes, %3d listed (%.0f%%), median span %d days\n",
				h.Origin, h.PrefixCount, h.ListedCount, h.ListedFraction*100, h.MedianSpanDays)
		}
	}
	if n := len(r.MOAS.Samples); n > 0 {
		last := r.MOAS.Samples[n-1]
		fmt.Fprintf(w, "MOAS conflicts at window end: %d (%d listed on DROP)\n", last.Conflicts, last.Listed)
	}
	return nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
