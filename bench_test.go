package dropscope

// The benchmark harness: one benchmark per table and figure in the
// paper's evaluation, each regenerating that experiment's rows/series
// from the archives, plus ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The world is generated once per process and shared; the benchmarks
// measure the analysis computations, which is what a user re-runs while
// iterating on data.

import (
	"bytes"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"dropscope/internal/analysis"
	"dropscope/internal/bgp"
	"dropscope/internal/delta"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/rtr"
	"dropscope/internal/sbl"
	"dropscope/internal/scenario"
	"dropscope/internal/timex"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

func benchPipeline(b *testing.B) *analysis.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 256 // bench the analysis, not world generation
		s, err := NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		benchStudy = s
	})
	return benchStudy.Pipeline
}

// BenchmarkFig1Classification regenerates Figure 1: the category and
// address-space breakdown of all 712 DROP listings.
func BenchmarkFig1Classification(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Fig1Classification()
		if f.TotalPrefixes != 712 {
			b.Fatal("wrong population")
		}
	}
}

// BenchmarkFig2Visibility regenerates Figure 2: per-listing visibility
// CDFs at four day offsets, withdrawal rates, and filtering-peer
// detection across every (peer, listing) pair.
func BenchmarkFig2Visibility(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Fig2Visibility()
		if len(f.FilteringPeers) == 0 {
			b.Fatal("no filtering peers")
		}
	}
}

// BenchmarkTable1RPKIUptake regenerates Table 1: per-RIR signing rates of
// the never/removed/present populations plus the §4.2 ASN breakdown.
func BenchmarkTable1RPKIUptake(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := p.Table1RPKIUptake()
		if _, removed, _ := t1.Overall(); removed.Total == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3IRRTiming regenerates Figure 3 and the §5 aggregates: the
// route-object journal correlation for every listing.
func BenchmarkFig3IRRTiming(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.Sec5IRR()
		if s.WithHijackerASNObject == 0 {
			b.Fatal("no hijacker objects")
		}
	}
}

// BenchmarkSec5IRREffectiveness is the §5-specific alias bench (same
// computation as Fig 3; kept separate so per-experiment timings appear
// in the harness output).
func BenchmarkSec5IRREffectiveness(b *testing.B) {
	BenchmarkFig3IRRTiming(b)
}

// BenchmarkFig4CaseStudy regenerates the §6.1 case study: pre-signed
// hijack detection, ROA-control inference, and sibling discovery.
func BenchmarkFig4CaseStudy(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Fig4RPKIValidHijacks()
		if len(f.PreSigned) == 0 {
			b.Fatal("no pre-signed hijacks")
		}
	}
}

// BenchmarkFig5ROAStatus regenerates Figure 5: the monthly sweep
// classifying signed and allocated space by routing status.
func BenchmarkFig5ROAStatus(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Fig5ROAStatus()
		if len(f.Samples) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkFig6UnallocTimeline regenerates Figure 6: unallocated listing
// events, AS0 policy detection, and the would-be-filtered count.
func BenchmarkFig6UnallocTimeline(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Fig6UnallocatedTimeline()
		if len(f.Events) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkFig7FreePool regenerates Figure 7: the per-RIR free-pool
// series.
func BenchmarkFig7FreePool(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.Fig7FreePools()) == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkTable2SBLClassify regenerates Table 2 / Appendix A: keyword
// classification of the full SBL corpus.
func BenchmarkTable2SBLClassify(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := p.Table2SBLBreakdown()
		if t2.Records == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkPipelineNew measures pipeline construction — dominated by
// per-collector RIB reassembly — serially and with the bounded
// GOMAXPROCS worker pool. The two paths produce identical pipelines
// (TestParallelNewMatchesSerial); this benchmark tracks what the
// parallelism buys.
func BenchmarkPipelineNew(b *testing.B) {
	ds := benchPipeline(b).Dataset()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.NewSerial(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.New(ds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmStart measures pipeline construction served from a
// persistent index snapshot (internal/ribsnap): per iteration it
// re-digests the MRT archive bytes, loads and verifies the snapshot
// (memory-mapped on linux), and builds the pipeline around the decoded
// index — everything a warm `dropscope -load` does instead of MRT RIB
// reassembly. Its comparator is BenchmarkPipelineNew, the cold path it
// replaces; the committed BENCH_PR5.json pins the ratio (a warm start
// must cost at most 20% of a cold build in ns/op and allocs/op, gated
// by scripts/check.sh warmstart).
func BenchmarkWarmStart(b *testing.B) {
	ds := benchPipeline(b).Dataset()
	dir := b.TempDir()
	if err := benchStudy.WriteArchives(dir); err != nil {
		b.Fatal(err)
	}
	mrtDir := filepath.Join(dir, "mrt")
	digest, err := ribsnap.DigestMRT(mrtDir)
	if err != nil {
		b.Fatal(err)
	}
	frozen, err := benchStudy.Pipeline.Index.(*rib.Index).Frozen()
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, 0, len(ds.MRT))
	for name := range ds.MRT {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]ribsnap.CollectorCount, 0, len(names))
	for _, name := range names {
		counts = append(counts, ribsnap.CollectorCount{
			Collector: name, Records: uint64(len(ds.MRT[name])),
		})
	}
	path := filepath.Join(dir, "ribsnap", "index.ribsnap")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		b.Fatal(err)
	}
	if err := ribsnap.Write(path, frozen, ds.Window, digest, counts); err != nil {
		b.Fatal(err)
	}
	warmDS := ds
	warmDS.MRT = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ribsnap.DigestMRT(mrtDir)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := ribsnap.Load(path, d)
		if err != nil {
			b.Fatal(err)
		}
		p, err := analysis.NewWithOptions(warmDS, analysis.Options{Index: snap.Index})
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Listings) != 712 {
			b.Fatal("wrong population")
		}
		snap.Close()
	}
}

// BenchmarkIncrementalAppend measures what delta ingest saves when the
// archive grows: the cost of bringing the persisted index snapshot
// current. "cold" is the path it replaces — digest the archive, decode
// every MRT byte, rebuild the index, persist. "append" adopts the
// pre-growth snapshot as a base and decodes only the bytes appended
// since it was written, merging them onto the mapped columns. Each
// append iteration first restores the stale pre-growth snapshot, so
// every iteration pays the full delta cost (archive re-digest, prefix
// re-hash, suffix decode, merge, persist) — never a plain warm start.
// The committed BENCH_PR10.json pins the ratio: an append must cost at
// most 30% of the cold rebuild it replaces in ns/op, gated by
// scripts/check.sh deltaratio.
func BenchmarkIncrementalAppend(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	s, err := NewStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The base volume every cold rebuild re-decodes; the append skips it.
	if records, _ := s.AmplifyVolume(32768, 1); records == 0 {
		b.Fatal("AmplifyVolume appended nothing")
	}
	dir := b.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		b.Fatal(err)
	}
	mrtDir := filepath.Join(dir, "mrt")
	window := cfg.Window

	// coldBuild is a from-scratch snapshot refresh over the archive's
	// current bytes: one hash pass for cursors + digest, decode, index,
	// persist with lineage.
	coldBuild := func(path string) error {
		cur, err := ribsnap.ArchiveCursors(mrtDir)
		if err != nil {
			return err
		}
		digest := ribsnap.DigestCursors(cur)
		ents, err := os.ReadDir(mrtDir)
		if err != nil {
			return err
		}
		ix := rib.NewIndex()
		var counts []ribsnap.CollectorCount
		for _, e := range ents {
			name, ok := strings.CutSuffix(e.Name(), ".mrt")
			if !ok {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(mrtDir, e.Name()))
			if err != nil {
				return err
			}
			recs, err := mrt.ReadAll(bytes.NewReader(raw))
			if err != nil {
				return err
			}
			if err := ix.Load(name, recs); err != nil {
				return err
			}
			counts = append(counts, ribsnap.CollectorCount{Collector: name, Records: uint64(len(recs))})
		}
		ix.Close(window.Last)
		frozen, err := ix.Frozen()
		if err != nil {
			return err
		}
		lin := &ribsnap.Lineage{MaxDay: frozen.MaxDay, Cursors: cur}
		return ribsnap.WriteLineage(path, frozen, window, digest, counts, lin)
	}

	snapPath := filepath.Join(dir, "ribsnap", "index.ribsnap")
	if err := os.MkdirAll(filepath.Dir(snapPath), 0o755); err != nil {
		b.Fatal(err)
	}
	if err := coldBuild(snapPath); err != nil {
		b.Fatal(err)
	}
	stale, err := os.ReadFile(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	// The appended growth: a small fraction of the base volume, the
	// "one more day of data arrived" shape delta ingest exists for.
	if records, _ := s.AmplifyVolume(64, 2); records == 0 {
		b.Fatal("AmplifyVolume appended nothing")
	}
	if err := s.WriteArchives(dir); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := coldBuild(snapPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := os.WriteFile(snapPath, stale, 0o644); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			base, err := ribsnap.LoadAt(snapPath)
			if err != nil {
				b.Fatal(err)
			}
			if base.Lineage == nil || !archiveGrew(mrtDir, base.Lineage.Cursors) {
				b.Fatal("stale snapshot not recognized as append-only growth")
			}
			frozen, err := base.Index.Frozen()
			if err != nil {
				b.Fatal(err)
			}
			res, err := delta.Build(mrtDir, frozen, base.Lineage, base.Counts, base.Window, window, base.Digest)
			if err != nil {
				b.Fatal(err)
			}
			err = ribsnap.WriteLineage(snapPath, res.Frozen, window, res.Digest, res.Counts, res.Lineage)
			base.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResultsParallel measures the full experiment suite through the
// serial runner and through the dependency-aware fan-out scheduler.
func BenchmarkResultsParallel(b *testing.B) {
	_ = benchPipeline(b)
	s := benchStudy
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := s.ResultsSerial()
			if r.Fig1.TotalPrefixes != 712 {
				b.Fatal("wrong population")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := s.Results()
			if r.Fig1.TotalPrefixes != 712 {
				b.Fatal("wrong population")
			}
		}
	})
}

// BenchmarkEndToEnd measures the full study: world generation, archive
// emission, RIB reassembly, and every experiment.
func BenchmarkEndToEnd(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := s.Results()
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (design choices from DESIGN.md) -------------------

// BenchmarkAblationTrieVsScan compares the Patricia trie against a linear
// scan for longest-prefix matching, the core join in every analysis.
func BenchmarkAblationTrieVsScan(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	var trie netx.Trie[int]
	var list []netx.Prefix
	for i := 0; i < 4096; i++ {
		p := netx.PrefixFrom(netx.Addr(rng.Uint32()), 8+rng.Intn(17))
		trie.Insert(p, i)
		list = append(list, p)
	}
	queries := make([]netx.Prefix, 1024)
	for i := range queries {
		queries[i] = netx.PrefixFrom(netx.Addr(rng.Uint32()), 24)
	}

	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				trie.LongestMatch(q)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				var best netx.Prefix
				found := false
				for _, p := range list {
					if p.Covers(q) && (!found || p.Bits() > best.Bits()) {
						best, found = p, true
					}
				}
				_ = best
			}
		}
	})
}

// BenchmarkAblationMRTStreaming compares streaming MRT decode against
// slurping the file and decoding from a memory reader (identical bytes).
func BenchmarkAblationMRTStreaming(b *testing.B) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	t0 := timex.MustParseDay("2020-01-01")
	for i := 0; i < 2000; i++ {
		rec := &mrt.BGP4MPMessage{
			When:   t0.Time(),
			PeerAS: 64500, LocalAS: 6447,
			PeerAddr: netx.AddrFrom4(10, 0, 0, 1), LocalAddr: netx.AddrFrom4(10, 0, 0, 2),
			Update: &bgp.Update{
				Attrs: bgp.Attrs{Path: bgp.Sequence(64500, bgp.ASN(i))},
				NLRI:  []netx.Prefix{netx.PrefixFrom(netx.AddrFrom4(10, byte(i>>8), byte(i), 0), 24)},
			},
		}
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))

	b.Run("streaming", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			r := mrt.NewReader(bytes.NewReader(wire))
			n := 0
			for {
				_, err := r.Next()
				if err != nil {
					break
				}
				n++
			}
			if n != 2000 {
				b.Fatal("short read")
			}
		}
	})
	b.Run("slurp", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			cp := make([]byte, len(wire))
			copy(cp, wire)
			recs, err := mrt.ReadAll(bytes.NewReader(cp))
			if err != nil || len(recs) != 2000 {
				b.Fatal("short read")
			}
		}
	})
}

// BenchmarkAblationRIBDelta compares building visibility state from an
// initial snapshot plus incremental updates against full-table snapshots
// at every change.
func BenchmarkAblationRIBDelta(b *testing.B) {
	t0 := timex.MustParseDay("2020-01-01")
	peers := &mrt.PeerIndexTable{
		When:  t0.Time(),
		Peers: []mrt.Peer{{Addr: netx.AddrFrom4(10, 0, 0, 1), AS: 64500}},
	}
	const prefixes = 500
	const churn = 200

	mkPrefix := func(i int) netx.Prefix {
		return netx.PrefixFrom(netx.AddrFrom4(10, byte(i>>8), byte(i), 0), 24)
	}

	// Delta stream: one RIB dump + announce/withdraw churn.
	var delta []mrt.Record
	delta = append(delta, peers)
	for i := 0; i < prefixes; i++ {
		delta = append(delta, &mrt.RIBPrefix{
			When: t0.Time(), Prefix: mkPrefix(i),
			Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: t0.Time(),
				Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 100)}}},
		})
	}
	for c := 0; c < churn; c++ {
		day := t0 + timex.Day(c+1)
		delta = append(delta, &mrt.BGP4MPMessage{
			When: day.Time(), PeerAS: 64500, PeerAddr: netx.AddrFrom4(10, 0, 0, 1),
			Update: &bgp.Update{Withdrawn: []netx.Prefix{mkPrefix(c % prefixes)}},
		})
	}

	// Snapshot stream: a full RIB dump per churn day.
	var snaps []mrt.Record
	snaps = append(snaps, peers)
	for c := 0; c < churn; c++ {
		day := t0 + timex.Day(c+1)
		for i := 0; i < prefixes; i++ {
			snaps = append(snaps, &mrt.RIBPrefix{
				When: day.Time(), Prefix: mkPrefix(i),
				Entries: []mrt.RIBEntry{{PeerIndex: 0, OriginatedTime: t0.Time(),
					Attrs: bgp.Attrs{Path: bgp.Sequence(64500, 100)}}},
			})
		}
	}

	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := rib.NewIndex()
			if err := ix.Load("c", delta); err != nil {
				b.Fatal(err)
			}
			ix.Close(t0 + 300)
		}
	})
	b.Run("snapshots", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := rib.NewIndex()
			if err := ix.Load("c", snaps); err != nil {
				b.Fatal(err)
			}
			ix.Close(t0 + 300)
		}
	})
}

// BenchmarkAblationSBLMatcher compares the production classifier against
// a naive per-keyword re-scan over a synthetic corpus.
func BenchmarkAblationSBLMatcher(b *testing.B) {
	texts := make([]string, 512)
	base := []string{
		"Hijacked netblock on Stolen AS62927, illegal announcement via rogue transit",
		"Snowshoe spam range used for high volume emission",
		"Register Of Known Spam Operations entry for a long-running operation",
		"AS204139 spammer hosting: bulletproof hosting ignoring complaints",
		"Unallocated bogon space announced for spam",
	}
	for i := range texts {
		texts[i] = base[i%len(base)]
	}

	b.Run("classifier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range texts {
				cl := sbl.Classify(t)
				if len(cl.Categories) == 0 && !cl.NeedsReview {
					b.Fatal("bad classification")
				}
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		keywords := []string{"hijack", "stolen", "snowshoe", "known spam operation", "hosting", "unallocated", "bogon"}
		for i := 0; i < b.N; i++ {
			for _, t := range texts {
				n := 0
				lower := []byte(t)
				for j := range lower {
					c := lower[j]
					if c >= 'A' && c <= 'Z' {
						lower[j] = c + 32
					}
				}
				ls := string(lower)
				for _, k := range keywords {
					if bytes.Contains([]byte(ls), []byte(k)) {
						n++
					}
				}
				_ = n
			}
		}
	})
}

// BenchmarkWorldGeneration measures the synthetic-world generator alone
// at the default scale.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := scenario.DefaultParams()
	cfg.Scale = 512
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterfactuals measures the extension analyses: ROV impact,
// AS0 remediation arithmetic, maxLength audit, and path-end validation.
func BenchmarkCounterfactuals(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ROVCounterfactual()
		_ = p.AS0WhatIf()
		_ = p.MaxLengthAnalysis()
		_ = p.PathEndCounterfactual()
	}
}

// BenchmarkRTRSync measures a full RPKI-to-Router reset handshake over an
// in-memory pipe: the cache streams its VRP set to the router.
func BenchmarkRTRSync(b *testing.B) {
	p := benchPipeline(b)
	vrps := rtr.SnapshotVRPs(p.Dataset().RPKI, p.Window().Last, nil)
	if len(vrps) == 0 {
		b.Fatal("no VRPs")
	}
	b.SetBytes(int64(20 * len(vrps))) // one 20-byte PDU per VRP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := rtr.NewServer(1, vrps)
		client, server := net.Pipe()
		go func() { _ = srv.HandleConn(server) }()
		c := rtr.NewClient(client)
		if err := c.Reset(); err != nil {
			b.Fatal(err)
		}
		if len(c.VRPs) != len(vrps) {
			b.Fatal("short sync")
		}
		client.Close()
	}
}

var (
	shardBenchOnce sync.Once
	shardBenchIx   *rib.Index
	shardBenchWin  timex.Range
)

// shardBenchIndex builds one volume-amplified index for the sharding
// benchmarks: the study world plus RouteViews-realistic background
// churn at scale 4096, so the freeze/persist cost is dominated by real
// column work rather than fixture overhead.
func shardBenchIndex(b *testing.B) (*rib.Index, timex.Range) {
	b.Helper()
	shardBenchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 256
		s, err := NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		s.AmplifyVolume(4096, 1)
		ix := rib.NewIndex()
		names := make([]string, 0, len(s.World.MRT))
		for name := range s.World.MRT {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := ix.Load(name, s.World.MRT[name]); err != nil {
				panic(err)
			}
		}
		ix.Close(s.World.Params.Window.Last)
		shardBenchIx, shardBenchWin = ix, s.World.Params.Window
	})
	return shardBenchIx, shardBenchWin
}

// BenchmarkShardFreeze compares persisting one generation as a single
// snapshot file against cutting it into 4 prefix-range shards and
// writing them on the worker pool: the freeze+encode+fsync pipeline is
// the cold path a reload blocks on, and sharding parallelizes all of
// it. The shardgate CI check asserts sharded/single >= 1.5x on 4+
// cores.
func BenchmarkShardFreeze(b *testing.B) {
	ix, window := shardBenchIndex(b)
	b.Run("single", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			frozen, err := ix.Frozen()
			if err != nil {
				b.Fatal(err)
			}
			var digest [32]byte
			digest[0], digest[1] = byte(i), byte(i>>8)
			path := filepath.Join(dir, ribsnap.GenName(digest))
			if err := ribsnap.Write(path, frozen, window, digest, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		st, err := ribsnap.OpenStore(b.TempDir(), ribsnap.StoreOptions{Retain: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			shards, err := ix.FrozenShards(4, 0)
			if err != nil {
				b.Fatal(err)
			}
			var digest [32]byte
			digest[0], digest[1], digest[2] = 0x5D, byte(i), byte(i>>8)
			if err := st.WriteShards(shards, window, digest, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardQueryFanout measures the cross-shard aggregate path: a
// RoutedSpace sweep fanned out over 4 shards and merged, against the
// same sweep on the unsharded index.
func BenchmarkShardQueryFanout(b *testing.B) {
	ix, window := shardBenchIndex(b)
	day := window.First + timex.Day(window.Days()/2)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ix.RoutedSpace(day, 1).Len() == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		shards, err := ix.FrozenShards(4, 0)
		if err != nil {
			b.Fatal(err)
		}
		sh, err := rib.ShardedFromFrozen(shards, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sh.RoutedSpace(day, 1).Len() == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
}
