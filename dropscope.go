// Package dropscope reproduces the measurement pipeline of "Stop, DROP,
// and ROA: Effectiveness of Defenses through the lens of DROP" (IMC 2022).
//
// The library has three layers:
//
//   - Substrates (internal/...): from-scratch implementations of every
//     data format the study consumes — MRT (RFC 6396) with full BGP UPDATE
//     wire codec, RPSL/IRR with a journaled registry, RPKI ROAs with
//     RFC 6811 validation and per-RIR trust anchors, RIR delegated-extended
//     stats, the Spamhaus DROP list format, and SBL record classification.
//
//   - A deterministic synthetic-Internet generator (internal/scenario)
//     calibrated to the paper's populations and behaviors, standing in for
//     the proprietary feeds; it emits genuine archive bytes.
//
//   - The analysis pipeline (internal/analysis) that recomputes every
//     table and figure of the paper from the archives alone.
//
// Quick start:
//
//	study, err := dropscope.NewStudy(dropscope.DefaultConfig())
//	if err != nil { ... }
//	results := study.Results()
//	results.Render(os.Stdout)
package dropscope

import (
	"fmt"
	"io"

	"dropscope/internal/analysis"
	"dropscope/internal/archive"
	"dropscope/internal/ingest"
	"dropscope/internal/scenario"
)

// Config parameterizes the synthetic world; see scenario.Params for every
// knob. DefaultConfig reproduces the paper at 1/64 background scale.
type Config = scenario.Params

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config { return scenario.DefaultParams() }

// Study couples a generated world with its analysis pipeline.
type Study struct {
	World    *scenario.World
	Pipeline *analysis.Pipeline
}

// NewStudy generates a world and builds the analysis pipeline over its
// archives. Per-collector RIB reassembly fans out across
// runtime.GOMAXPROCS(0) workers; the result is identical to
// NewStudySerial's (collector RIBs merge in sorted name order whatever
// the schedule).
func NewStudy(cfg Config) (*Study, error) {
	return newStudy(cfg, 0)
}

// NewStudySerial is NewStudy with the RIB-loading worker pool disabled:
// everything runs on the calling goroutine. It is the construction-time
// counterpart of ResultsSerial.
func NewStudySerial(cfg Config) (*Study, error) {
	return newStudy(cfg, 1)
}

func newStudy(cfg Config, workers int) (*Study, error) {
	w, err := scenario.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dropscope: generate: %w", err)
	}
	p, err := analysis.NewWithConcurrency(analysis.Dataset{
		Window: cfg.Window,
		DROP:   w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
		MRT: w.MRT,
	}, workers)
	if err != nil {
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	return &Study{World: w, Pipeline: p}, nil
}

// LoadStudy builds the pipeline from archives previously written with
// (*Study).WriteArchives — the file-based path a downstream user takes
// with their own data. It is strict: the first corrupt record or
// malformed line fails the load. Use LoadStudyWithOptions to run over
// damaged archives.
func LoadStudy(dir string, cfg Config) (*Study, error) {
	return LoadStudyWithOptions(dir, cfg, IngestOptions{Strict: true})
}

// IngestOptions configures how LoadStudyWithOptions reads archives and
// builds the pipeline.
type IngestOptions struct {
	// Strict fails the load on the first corrupt MRT record or malformed
	// text line, with the record index and byte offset in the error. The
	// default (false) reads leniently: damage is skipped and counted per
	// source, and a collector whose skip count exceeds MaxSkip is
	// quarantined while the study proceeds without it.
	Strict bool
	// MaxSkip is the per-collector skip budget in lenient mode. 0 means
	// ingest.DefaultMaxSkip (100); negative means unlimited.
	MaxSkip int
	// Workers bounds the RIB-loading pool: <= 0 means
	// runtime.GOMAXPROCS(0), 1 loads serially.
	Workers int
}

// LoadStudyWithOptions is LoadStudy under explicit ingest options. After
// a lenient load, per-source skip accounting and quarantine decisions
// are available via the pipeline's Health and appear in the rendered
// report's data-health section; over undamaged archives the lenient
// path's output is byte-identical to the strict path's.
func LoadStudyWithOptions(dir string, cfg Config, opts IngestOptions) (*Study, error) {
	var (
		b   *archive.Bundle
		h   *ingest.Health
		err error
	)
	if opts.Strict {
		b, err = archive.Load(dir)
	} else {
		h = ingest.NewHealth()
		b, err = archive.LoadWithHealth(dir, h)
	}
	if err != nil {
		return nil, fmt.Errorf("dropscope: load: %w", err)
	}
	p, err := analysis.NewWithOptions(analysis.Dataset{
		Window: cfg.Window,
		DROP:   b.DROP, SBL: b.SBL, IRR: b.IRR, RPKI: b.RPKI, RIR: b.RIR,
		MRT: b.MRT,
	}, analysis.Options{
		Workers: opts.Workers,
		Lenient: !opts.Strict,
		MaxSkip: opts.MaxSkip,
		Health:  h,
	})
	if err != nil {
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	return &Study{Pipeline: p}, nil
}

// WriteArchives persists every archive of the study's world under dir in
// its native on-disk format.
func (s *Study) WriteArchives(dir string) error {
	if s.World == nil {
		return fmt.Errorf("dropscope: study has no generated world to persist")
	}
	return archive.Write(dir, &archive.Bundle{
		MRT: s.World.MRT, DROP: s.World.DROP, SBL: s.World.SBL,
		IRR: s.World.IRR, RPKI: s.World.RPKI, RIR: s.World.RIR,
	})
}

// Results bundles every reproduced table and figure.
type Results struct {
	Fig1    analysis.Fig1
	Fig2    analysis.Fig2
	Dealloc analysis.Dealloc
	Table1  analysis.Table1
	Sec5    analysis.Sec5
	Fig4    analysis.Fig4
	Fig5    analysis.Fig5
	Fig6    analysis.Fig6
	Fig7    []analysis.Fig7Sample
	Table2  analysis.Table2

	// Extensions beyond the paper's figures: the counterfactuals its
	// conclusions argue from.
	ROV       analysis.ROVImpact
	AS0WhatIf analysis.AS0Remediation
	MaxLength analysis.MaxLengthAudit
	PathEnd   analysis.PathEndImpact
	Hijackers []analysis.HijackerProfile
	MOAS      analysis.MOASReport

	// Health is the ingest accounting of a lenient build: per-source
	// records, classified skips, and quarantined collectors. It is zero
	// (Clean) after a strict build or a lenient build over undamaged
	// archives, and the rendered report gains a data-health section only
	// when it is not.
	Health ingest.Report
}

// Results runs every experiment, fanning the independent ones out across
// up to runtime.GOMAXPROCS(0) goroutines. Experiments are pure functions
// of the (immutable) pipeline, and the scheduler orders the few that read
// another's output — currently only the path-end counterfactual, which
// consumes Figure 4's case-study prefix — so the returned Results is
// byte-for-byte identical to ResultsSerial's.
func (s *Study) Results() Results {
	return runExperiments(s.Pipeline, 0)
}

// ResultsSerial runs every experiment sequentially on the calling
// goroutine — the single-threaded escape hatch for profiling, debugging,
// or embedding in an environment where spawning goroutines is unwelcome.
// Output is identical to Results.
func (s *Study) ResultsSerial() Results {
	return runExperiments(s.Pipeline, 1)
}

// ResultsWithConcurrency runs every experiment with an explicit worker
// bound: <= 0 means runtime.GOMAXPROCS(0), 1 is ResultsSerial.
func (s *Study) ResultsWithConcurrency(workers int) Results {
	return runExperiments(s.Pipeline, workers)
}

// Render writes every table and figure as text to w. Rendering is a pure
// function of the Results value: because the parallel and serial
// execution paths produce identical Results (see Results and
// ResultsSerial), the rendered report is byte-identical regardless of how
// the experiments were scheduled.
func (r Results) Render(w io.Writer) error {
	return renderAll(w, r)
}
