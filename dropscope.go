// Package dropscope reproduces the measurement pipeline of "Stop, DROP,
// and ROA: Effectiveness of Defenses through the lens of DROP" (IMC 2022).
//
// The library has three layers:
//
//   - Substrates (internal/...): from-scratch implementations of every
//     data format the study consumes — MRT (RFC 6396) with full BGP UPDATE
//     wire codec, RPSL/IRR with a journaled registry, RPKI ROAs with
//     RFC 6811 validation and per-RIR trust anchors, RIR delegated-extended
//     stats, the Spamhaus DROP list format, and SBL record classification.
//
//   - A deterministic synthetic-Internet generator (internal/scenario)
//     calibrated to the paper's populations and behaviors, standing in for
//     the proprietary feeds; it emits genuine archive bytes.
//
//   - The analysis pipeline (internal/analysis) that recomputes every
//     table and figure of the paper from the archives alone.
//
// Quick start:
//
//	study, err := dropscope.NewStudy(dropscope.DefaultConfig())
//	if err != nil { ... }
//	results := study.Results()
//	results.Render(os.Stdout)
package dropscope

import (
	"fmt"
	"io"

	"dropscope/internal/analysis"
	"dropscope/internal/archive"
	"dropscope/internal/scenario"
)

// Config parameterizes the synthetic world; see scenario.Params for every
// knob. DefaultConfig reproduces the paper at 1/64 background scale.
type Config = scenario.Params

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config { return scenario.DefaultParams() }

// Study couples a generated world with its analysis pipeline.
type Study struct {
	World    *scenario.World
	Pipeline *analysis.Pipeline
}

// NewStudy generates a world and builds the analysis pipeline over its
// archives. Per-collector RIB reassembly fans out across
// runtime.GOMAXPROCS(0) workers; the result is identical to
// NewStudySerial's (collector RIBs merge in sorted name order whatever
// the schedule).
func NewStudy(cfg Config) (*Study, error) {
	return newStudy(cfg, 0)
}

// NewStudySerial is NewStudy with the RIB-loading worker pool disabled:
// everything runs on the calling goroutine. It is the construction-time
// counterpart of ResultsSerial.
func NewStudySerial(cfg Config) (*Study, error) {
	return newStudy(cfg, 1)
}

func newStudy(cfg Config, workers int) (*Study, error) {
	w, err := scenario.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dropscope: generate: %w", err)
	}
	p, err := analysis.NewWithConcurrency(analysis.Dataset{
		Window: cfg.Window,
		DROP:   w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
		MRT: w.MRT,
	}, workers)
	if err != nil {
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	return &Study{World: w, Pipeline: p}, nil
}

// LoadStudy builds the pipeline from archives previously written with
// (*Study).WriteArchives — the file-based path a downstream user takes
// with their own data.
func LoadStudy(dir string, cfg Config) (*Study, error) {
	b, err := archive.Load(dir)
	if err != nil {
		return nil, fmt.Errorf("dropscope: load: %w", err)
	}
	p, err := analysis.New(analysis.Dataset{
		Window: cfg.Window,
		DROP:   b.DROP, SBL: b.SBL, IRR: b.IRR, RPKI: b.RPKI, RIR: b.RIR,
		MRT: b.MRT,
	})
	if err != nil {
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	return &Study{Pipeline: p}, nil
}

// WriteArchives persists every archive of the study's world under dir in
// its native on-disk format.
func (s *Study) WriteArchives(dir string) error {
	if s.World == nil {
		return fmt.Errorf("dropscope: study has no generated world to persist")
	}
	return archive.Write(dir, &archive.Bundle{
		MRT: s.World.MRT, DROP: s.World.DROP, SBL: s.World.SBL,
		IRR: s.World.IRR, RPKI: s.World.RPKI, RIR: s.World.RIR,
	})
}

// Results bundles every reproduced table and figure.
type Results struct {
	Fig1    analysis.Fig1
	Fig2    analysis.Fig2
	Dealloc analysis.Dealloc
	Table1  analysis.Table1
	Sec5    analysis.Sec5
	Fig4    analysis.Fig4
	Fig5    analysis.Fig5
	Fig6    analysis.Fig6
	Fig7    []analysis.Fig7Sample
	Table2  analysis.Table2

	// Extensions beyond the paper's figures: the counterfactuals its
	// conclusions argue from.
	ROV       analysis.ROVImpact
	AS0WhatIf analysis.AS0Remediation
	MaxLength analysis.MaxLengthAudit
	PathEnd   analysis.PathEndImpact
	Hijackers []analysis.HijackerProfile
	MOAS      analysis.MOASReport
}

// Results runs every experiment, fanning the independent ones out across
// up to runtime.GOMAXPROCS(0) goroutines. Experiments are pure functions
// of the (immutable) pipeline, and the scheduler orders the few that read
// another's output — currently only the path-end counterfactual, which
// consumes Figure 4's case-study prefix — so the returned Results is
// byte-for-byte identical to ResultsSerial's.
func (s *Study) Results() Results {
	return runExperiments(s.Pipeline, 0)
}

// ResultsSerial runs every experiment sequentially on the calling
// goroutine — the single-threaded escape hatch for profiling, debugging,
// or embedding in an environment where spawning goroutines is unwelcome.
// Output is identical to Results.
func (s *Study) ResultsSerial() Results {
	return runExperiments(s.Pipeline, 1)
}

// ResultsWithConcurrency runs every experiment with an explicit worker
// bound: <= 0 means runtime.GOMAXPROCS(0), 1 is ResultsSerial.
func (s *Study) ResultsWithConcurrency(workers int) Results {
	return runExperiments(s.Pipeline, workers)
}

// Render writes every table and figure as text to w. Rendering is a pure
// function of the Results value: because the parallel and serial
// execution paths produce identical Results (see Results and
// ResultsSerial), the rendered report is byte-identical regardless of how
// the experiments were scheduled.
func (r Results) Render(w io.Writer) error {
	return renderAll(w, r)
}
