// Package dropscope reproduces the measurement pipeline of "Stop, DROP,
// and ROA: Effectiveness of Defenses through the lens of DROP" (IMC 2022).
//
// The library has three layers:
//
//   - Substrates (internal/...): from-scratch implementations of every
//     data format the study consumes — MRT (RFC 6396) with full BGP UPDATE
//     wire codec, RPSL/IRR with a journaled registry, RPKI ROAs with
//     RFC 6811 validation and per-RIR trust anchors, RIR delegated-extended
//     stats, the Spamhaus DROP list format, and SBL record classification.
//
//   - A deterministic synthetic-Internet generator (internal/scenario)
//     calibrated to the paper's populations and behaviors, standing in for
//     the proprietary feeds; it emits genuine archive bytes.
//
//   - The analysis pipeline (internal/analysis) that recomputes every
//     table and figure of the paper from the archives alone.
//
// Quick start:
//
//	study, err := dropscope.NewStudy(dropscope.DefaultConfig())
//	if err != nil { ... }
//	results := study.Results()
//	results.Render(os.Stdout)
package dropscope

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dropscope/internal/analysis"
	"dropscope/internal/archive"
	"dropscope/internal/delta"
	"dropscope/internal/ingest"
	"dropscope/internal/rib"
	"dropscope/internal/ribsnap"
	"dropscope/internal/scenario"
)

// Config parameterizes the synthetic world; see scenario.Params for every
// knob. DefaultConfig reproduces the paper at 1/64 background scale.
type Config = scenario.Params

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config { return scenario.DefaultParams() }

// Study couples a generated world with its analysis pipeline.
type Study struct {
	World    *scenario.World
	Pipeline *analysis.Pipeline

	// snap is the index snapshot a warm-started study was loaded from;
	// nil after a generated or cold-built study. It is retained because
	// the pipeline's index may alias the snapshot's file mapping.
	snap *ribsnap.Snapshot
}

// Close releases resources the study holds beyond the Go heap —
// currently the snapshot file mapping behind a warm-started index.
// The study must not be used afterwards. Close is a no-op (and always
// safe) on generated or cold-built studies.
func (s *Study) Close() error {
	if s.snap == nil {
		return nil
	}
	snap := s.snap
	s.snap = nil
	return snap.Close()
}

// NewStudy generates a world and builds the analysis pipeline over its
// archives. Per-collector RIB reassembly fans out across
// runtime.GOMAXPROCS(0) workers; the result is identical to
// NewStudySerial's (collector RIBs merge in sorted name order whatever
// the schedule).
func NewStudy(cfg Config) (*Study, error) {
	return newStudy(cfg, 0)
}

// NewStudySerial is NewStudy with the RIB-loading worker pool disabled:
// everything runs on the calling goroutine. It is the construction-time
// counterpart of ResultsSerial.
func NewStudySerial(cfg Config) (*Study, error) {
	return newStudy(cfg, 1)
}

func newStudy(cfg Config, workers int) (*Study, error) {
	w, err := scenario.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dropscope: generate: %w", err)
	}
	p, err := analysis.NewWithConcurrency(analysis.Dataset{
		Window: cfg.Window,
		DROP:   w.DROP, SBL: w.SBL, IRR: w.IRR, RPKI: w.RPKI, RIR: w.RIR,
		MRT: w.MRT,
	}, workers)
	if err != nil {
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	return &Study{World: w, Pipeline: p}, nil
}

// LoadStudy builds the pipeline from archives previously written with
// (*Study).WriteArchives — the file-based path a downstream user takes
// with their own data. It is strict: the first corrupt record or
// malformed line fails the load. Use LoadStudyWithOptions to run over
// damaged archives.
func LoadStudy(dir string, cfg Config) (*Study, error) {
	return LoadStudyWithOptions(dir, cfg, IngestOptions{Strict: true})
}

// IngestOptions configures how LoadStudyWithOptions reads archives and
// builds the pipeline.
type IngestOptions struct {
	// Strict fails the load on the first corrupt MRT record or malformed
	// text line, with the record index and byte offset in the error. The
	// default (false) reads leniently: damage is skipped and counted per
	// source, and a collector whose skip count exceeds MaxSkip is
	// quarantined while the study proceeds without it.
	Strict bool
	// MaxSkip is the per-collector skip budget in lenient mode. 0 means
	// ingest.DefaultMaxSkip (100); negative means unlimited.
	MaxSkip int
	// Workers bounds the RIB-loading pool: <= 0 means
	// runtime.GOMAXPROCS(0), 1 loads serially.
	Workers int
	// SnapshotDir enables warm starts. When non-empty, the loader keeps a
	// persistent snapshot of the frozen RIB index at
	// SnapshotDir/index.ribsnap, keyed on a digest of the archive's MRT
	// bytes. When the snapshot matches, MRT decode and index construction
	// are skipped entirely and the index is served from the snapshot
	// (memory-mapped and used in place on little-endian platforms); the
	// study's rendered output is byte-identical to a cold build's. When
	// the snapshot is missing, stale, version-skewed, or damaged, the
	// loader falls back to a cold build — never to wrong results — counts
	// the discarded snapshot in the health report (lenient mode), and
	// rewrites the snapshot after a clean rebuild.
	SnapshotDir string
	// Shards, when > 1, serves the study from a prefix-range sharded
	// index: the frozen index is cut into Shards pieces, point queries
	// route to the owning shard, and sweeps fan out in parallel. The
	// rendered output is byte-identical to the single-index study's;
	// the cut exists for parallel build and bounded-memory serving
	// (see internal/rib.Sharded and the dropscoped daemon's
	// -shards/-mem-budget flags).
	Shards int
	// Append, with SnapshotDir, enables incremental delta ingest: when
	// the cached snapshot is stale because the MRT archives grew
	// append-only (new bytes at the tails, old bytes untouched), the
	// snapshot is adopted as a base, only the appended bytes are decoded
	// and merged onto it, and the merged index is persisted as the new
	// snapshot — days already ingested are never re-decoded. The
	// rendered output is byte-identical to a cold rebuild of the grown
	// archive. Any deviation from the append-only contract (a rewritten
	// or truncated file, a removed collector, a moved window start)
	// falls back to a cold build — append may cost time, never
	// correctness.
	Append bool
}

// snapshotSource is the ingest.Health source name under which a
// discarded snapshot's skip is accounted.
const snapshotSource = "ribsnap/index"

// snapshotFile is the file name of the index snapshot inside
// IngestOptions.SnapshotDir.
const snapshotFile = "index.ribsnap"

// LoadStudyWithOptions is LoadStudy under explicit ingest options. After
// a lenient load, per-source skip accounting and quarantine decisions
// are available via the pipeline's Health and appear in the rendered
// report's data-health section; over undamaged archives the lenient
// path's output is byte-identical to the strict path's.
func LoadStudyWithOptions(dir string, cfg Config, opts IngestOptions) (*Study, error) {
	var h *ingest.Health
	if !opts.Strict {
		h = ingest.NewHealth()
	}

	// Warm path: try the snapshot before touching the MRT archives. Any
	// failure past this point degrades to a cold build; a snapshot can
	// cost time, never correctness.
	var (
		snap       *ribsnap.Snapshot
		digest     [32]byte
		haveDigest bool
		cursors    []ribsnap.ArchiveCursor
	)
	if opts.SnapshotDir != "" {
		// Startup sweep: collect temp files orphaned by a write a crash
		// interrupted. They are never adopted as snapshots — the durable
		// write only ever publishes by rename — so they are pure debris.
		_, _ = ribsnap.SweepTemps(opts.SnapshotDir)
		snapPath := filepath.Join(opts.SnapshotDir, snapshotFile)
		mrtDir := filepath.Join(dir, "mrt")
		if opts.Append {
			// Append-only growth is detectable from file sizes alone, so
			// the delta path is taken before any hashing: its single pass
			// verifies the consumed prefixes, decodes the appended bytes,
			// and yields the grown archive's digest as a byproduct. When it
			// declines (no growth, a rewrite, no lineage), the normal
			// hash-and-compare flow below decides warm, stale, or cold.
			snap = tryAppend(mrtDir, snapPath, cfg)
			if snap != nil {
				digest, haveDigest = snap.Digest, true
			}
		}
		if snap == nil {
			if cur, derr := ribsnap.ArchiveCursors(mrtDir); derr == nil {
				// One read of the archive yields both the snapshot key and
				// the lineage cursors a cold rebuild will persist.
				cursors = cur
				digest, haveDigest = ribsnap.DigestCursors(cur), true
				var lerr error
				snap, lerr = ribsnap.Load(snapPath, digest)
				switch {
				case lerr != nil:
					snap = nil
					countSnapshotSkip(h, lerr)
				case snap.Window != cfg.Window:
					snap.Close()
					snap = nil
					if h != nil {
						h.Source(snapshotSource).Skip(ingest.Unsupported)
					}
				}
			}
			// A cursor error (e.g. missing mrt/ directory) falls through;
			// the cold load below surfaces the real problem.
		}
	}

	b, err := archive.LoadWithOptions(dir, archive.LoadOptions{Health: h, SkipMRT: snap != nil})
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		return nil, fmt.Errorf("dropscope: load: %w", err)
	}
	aopts := analysis.Options{
		Workers: opts.Workers,
		Lenient: !opts.Strict,
		MaxSkip: opts.MaxSkip,
		Health:  h,
	}
	if snap != nil {
		aopts.Index = snap.Index
	}
	p, err := analysis.NewWithOptions(analysis.Dataset{
		Window: cfg.Window,
		DROP:   b.DROP, SBL: b.SBL, IRR: b.IRR, RPKI: b.RPKI, RIR: b.RIR,
		MRT: b.MRT,
	}, aopts)
	if err != nil {
		if snap != nil {
			snap.Close()
		}
		return nil, fmt.Errorf("dropscope: pipeline: %w", err)
	}
	if snap != nil && h != nil {
		// Replay the per-collector record counts the snapshot preserved,
		// so the health report (and the rendered output derived from it)
		// matches a cold build's byte for byte.
		for _, c := range snap.Counts {
			h.Source("mrt/" + c.Collector).Accept(c.Records)
		}
	}
	if snap == nil && haveDigest {
		writeSnapshot(filepath.Join(opts.SnapshotDir, snapshotFile), p, b, cfg, h, digest, cursors)
	}
	if opts.Shards > 1 {
		// Cut the index in place. The snapshot (if any) stays retained on
		// the Study: the shards' columns alias its mapping.
		if ix, ok := p.Index.(*rib.Index); ok {
			fs, ferr := ix.FrozenShards(opts.Shards, opts.Workers)
			if ferr != nil {
				if snap != nil {
					snap.Close()
				}
				return nil, fmt.Errorf("dropscope: shard: %w", ferr)
			}
			sh, serr := rib.ShardedFromFrozen(fs, opts.Workers)
			if serr != nil {
				if snap != nil {
					snap.Close()
				}
				return nil, fmt.Errorf("dropscope: shard: %w", serr)
			}
			p.Index = sh
		}
	}
	return &Study{Pipeline: p, snap: snap}, nil
}

// countSnapshotSkip classifies a discarded snapshot in the health
// accounting. A missing snapshot (first run) is not damage and counts
// nothing; truncation, corruption, version skew, and digest staleness
// each count one skip so the rendered report records why the load went
// cold.
func countSnapshotSkip(h *ingest.Health, err error) {
	if h == nil || os.IsNotExist(err) {
		return
	}
	src := h.Source(snapshotSource)
	switch {
	case errors.Is(err, ribsnap.ErrTruncated):
		src.Skip(ingest.Truncated)
	case errors.Is(err, ribsnap.ErrVersion), errors.Is(err, ribsnap.ErrStale):
		src.Skip(ingest.Unsupported)
	default:
		src.Skip(ingest.Corrupt)
	}
}

// archiveGrew reports whether the MRT files under mrtDir moved forward
// append-style from the cursors: every consumed file still present at
// its consumed size or larger, and at least one file grown or new. It
// reads no bytes — sizes alone route the load; the delta build's
// prefix hashes are what verify the old bytes are really unchanged.
func archiveGrew(mrtDir string, cursors []ribsnap.ArchiveCursor) bool {
	entries, err := os.ReadDir(mrtDir)
	if err != nil {
		return false
	}
	sizes := make(map[string]uint64, len(entries))
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".mrt")
		if !ok || e.IsDir() {
			continue
		}
		fi, ferr := e.Info()
		if ferr != nil {
			return false
		}
		sizes[name] = uint64(fi.Size())
	}
	grew := false
	for _, c := range cursors {
		size, ok := sizes[c.Collector]
		if !ok || size < c.Size {
			return false // removed or truncated: not append-only
		}
		if size > c.Size {
			grew = true
		}
		delete(sizes, c.Collector)
	}
	return grew || len(sizes) > 0 // len > 0: a new collector came online
}

// tryAppend attempts the incremental append path: when the archive
// grew append-style past the cached snapshot's cursors, the snapshot
// is adopted as a base, only the appended bytes are decoded and merged
// onto it, and the merged index is persisted — under the digest the
// delta's own pass derived — and reloaded warm. It returns nil when
// the delta cannot be taken — no snapshot, no lineage (an old
// snapshot), no growth, a rewritten archive, a decode error in the
// suffix, or a persist failure — and the caller decides warm, stale,
// or cold the normal way.
func tryAppend(mrtDir, snapPath string, cfg Config) *ribsnap.Snapshot {
	base, err := ribsnap.LoadAt(snapPath)
	if err != nil {
		return nil
	}
	if base.Lineage == nil || !archiveGrew(mrtDir, base.Lineage.Cursors) {
		base.Close()
		return nil
	}
	f, err := base.Index.Frozen()
	if err != nil {
		base.Close()
		return nil
	}
	res, err := delta.Build(mrtDir, f, base.Lineage,
		base.Counts, base.Window, cfg.Window, base.Digest)
	if err != nil {
		base.Close()
		return nil
	}
	// Persist the merged index, then release the base and reload from
	// disk: the study must never serve a mapping that aliases the
	// retired snapshot's.
	werr := ribsnap.WriteLineage(snapPath, res.Frozen, cfg.Window, res.Digest, res.Counts, res.Lineage)
	base.Close()
	if werr != nil {
		return nil
	}
	s, err := ribsnap.Load(snapPath, res.Digest)
	if err != nil {
		return nil
	}
	return s
}

// writeSnapshot persists the freshly built index for the next run. It
// is best-effort — a failure leaves the study unaffected — and it
// refuses to persist an index built from damaged MRT ingest: a partial
// index must never masquerade as the archive's. The snapshot carries
// lineage (the archive cursors from the same read that produced the
// digest, and the index's max record day) so a later Append load can
// adopt it as a delta base.
func writeSnapshot(path string, p *analysis.Pipeline, b *archive.Bundle, cfg Config, h *ingest.Health, digest [32]byte, cursors []ribsnap.ArchiveCursor) {
	if h != nil {
		for _, s := range h.Sources() {
			if strings.HasPrefix(s.Name, "mrt/") && !s.Clean() {
				return
			}
		}
	}
	ix, ok := p.Index.(*rib.Index)
	if !ok {
		// Snapshots persist the monolithic index; a study already serving
		// a sharded one never reaches here (the cut happens after).
		return
	}
	f, err := ix.Frozen()
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	names := make([]string, 0, len(b.MRT))
	for name := range b.MRT {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]ribsnap.CollectorCount, 0, len(names))
	for _, name := range names {
		n := uint64(len(b.MRT[name]))
		if h != nil {
			n = h.Source("mrt/" + name).Records
		}
		counts = append(counts, ribsnap.CollectorCount{Collector: name, Records: n})
	}
	lin := &ribsnap.Lineage{MaxDay: f.MaxDay, Cursors: cursors}
	_ = ribsnap.WriteLineage(path, f, cfg.Window, digest, counts, lin)
}

// AmplifyVolume appends RouteViews-realistic background churn to the
// generated world's MRT streams — per-collector record counts drawn
// from a seeded lognormal around scale, flapping synthetic prefixes
// across the window's days — so archives written afterwards carry
// production-like record volume for index-build and sharding
// benchmarks. The churn lives entirely in address space the study
// never measures; see scenario.AmplifyVolume. It returns the record
// and distinct-prefix counts appended, and must run before
// WriteArchives. The study's own Pipeline is NOT rebuilt: a study
// loaded back from the amplified archives sees the extra volume.
func (s *Study) AmplifyVolume(scale int, seed int64) (records, prefixes int) {
	if s.World == nil {
		return 0, 0
	}
	return scenario.AmplifyVolume(s.World, scale, seed)
}

// WriteArchives persists every archive of the study's world under dir in
// its native on-disk format.
func (s *Study) WriteArchives(dir string) error {
	if s.World == nil {
		return fmt.Errorf("dropscope: study has no generated world to persist")
	}
	return archive.Write(dir, &archive.Bundle{
		MRT: s.World.MRT, DROP: s.World.DROP, SBL: s.World.SBL,
		IRR: s.World.IRR, RPKI: s.World.RPKI, RIR: s.World.RIR,
	})
}

// Results bundles every reproduced table and figure.
type Results struct {
	Fig1    analysis.Fig1
	Fig2    analysis.Fig2
	Dealloc analysis.Dealloc
	Table1  analysis.Table1
	Sec5    analysis.Sec5
	Fig4    analysis.Fig4
	Fig5    analysis.Fig5
	Fig6    analysis.Fig6
	Fig7    []analysis.Fig7Sample
	Table2  analysis.Table2

	// Extensions beyond the paper's figures: the counterfactuals its
	// conclusions argue from.
	ROV       analysis.ROVImpact
	AS0WhatIf analysis.AS0Remediation
	MaxLength analysis.MaxLengthAudit
	PathEnd   analysis.PathEndImpact
	Hijackers []analysis.HijackerProfile
	MOAS      analysis.MOASReport

	// Health is the ingest accounting of a lenient build: per-source
	// records, classified skips, and quarantined collectors. It is zero
	// (Clean) after a strict build or a lenient build over undamaged
	// archives, and the rendered report gains a data-health section only
	// when it is not.
	Health ingest.Report
}

// Results runs every experiment, fanning the independent ones out across
// up to runtime.GOMAXPROCS(0) goroutines. Experiments are pure functions
// of the (immutable) pipeline, and the scheduler orders the few that read
// another's output — currently only the path-end counterfactual, which
// consumes Figure 4's case-study prefix — so the returned Results is
// byte-for-byte identical to ResultsSerial's.
func (s *Study) Results() Results {
	return runExperiments(s.Pipeline, 0)
}

// ResultsSerial runs every experiment sequentially on the calling
// goroutine — the single-threaded escape hatch for profiling, debugging,
// or embedding in an environment where spawning goroutines is unwelcome.
// Output is identical to Results.
func (s *Study) ResultsSerial() Results {
	return runExperiments(s.Pipeline, 1)
}

// ResultsWithConcurrency runs every experiment with an explicit worker
// bound: <= 0 means runtime.GOMAXPROCS(0), 1 is ResultsSerial.
func (s *Study) ResultsWithConcurrency(workers int) Results {
	return runExperiments(s.Pipeline, workers)
}

// Render writes every table and figure as text to w. Rendering is a pure
// function of the Results value: because the parallel and serial
// execution paths produce identical Results (see Results and
// ResultsSerial), the rendered report is byte-identical regardless of how
// the experiments were scheduled.
func (r Results) Render(w io.Writer) error {
	return renderAll(w, r)
}
