package dropscope

import (
	"bytes"
	"testing"
)

func renderBytes(t *testing.T, r Results) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestResultsDeterministic is the regression guard for the parallel
// pipeline: two runs of the parallel path over the same study must render
// byte-identically, which is only true while the sorted-collector merge
// and full-key sort ordering hold.
func TestResultsDeterministic(t *testing.T) {
	s := study(t)
	first := renderBytes(t, s.Results())
	second := renderBytes(t, s.Results())
	if !bytes.Equal(first, second) {
		t.Fatalf("two parallel Results runs rendered differently (%d vs %d bytes)",
			len(first), len(second))
	}
}

// TestResultsSerialMatchesParallel checks the escape hatch and the
// parallel scheduler agree byte for byte, across several worker bounds.
func TestResultsSerialMatchesParallel(t *testing.T) {
	s := study(t)
	serial := renderBytes(t, s.ResultsSerial())
	for _, workers := range []int{0, 2, 3, 16} {
		parallel := renderBytes(t, s.ResultsWithConcurrency(workers))
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("workers=%d: parallel render diverged from serial (%d vs %d bytes)",
				workers, len(parallel), len(serial))
		}
	}
}

// TestSerialAndParallelStudiesAgree builds two whole studies — one loaded
// serially end to end, one with every parallel path enabled — and checks
// the rendered reports match. This covers the full pipeline: concurrent
// RIB loading, sorted-collector merge, and the experiment fan-out.
func TestSerialAndParallelStudiesAgree(t *testing.T) {
	parallel := study(t)
	serialStudy, err := NewStudySerial(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := renderBytes(t, parallel.Results())
	want := renderBytes(t, serialStudy.ResultsSerial())
	if !bytes.Equal(got, want) {
		t.Fatal("parallel study render diverged from an independently built serial study")
	}
}

// TestDamagedStudySerialMatchesParallel extends the determinism guard to
// the quarantine path: over the same damaged archives and the same skip
// budget, a fully serial lenient build and a fully parallel one must
// render byte-identically — skip counts, quarantine decisions, and the
// data-health section included.
func TestDamagedStudySerialMatchesParallel(t *testing.T) {
	dir, _ := writeDamagedArchives(t, 2)
	serialStudy, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{Workers: 1, MaxSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelStudy, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{MaxSkip: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderBytes(t, serialStudy.ResultsSerial())
	got := renderBytes(t, parallelStudy.Results())
	if !bytes.Equal(got, want) {
		t.Fatalf("damaged-archive renders diverged between serial and parallel builds (%d vs %d bytes)",
			len(got), len(want))
	}
	if !bytes.Contains(want, []byte("Data health")) {
		t.Error("damaged-archive render lacks the data-health section")
	}
}
