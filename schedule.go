package dropscope

import (
	"runtime"
	"sync"

	"dropscope/internal/analysis"
)

// experiment is one unit of the Results fan-out: a named analysis that
// fills exactly one set of Results fields, plus the experiments whose
// outputs it reads. Almost every experiment is independent — the one real
// dependency today is PathEnd, which consumes Fig4's case-study prefix.
type experiment struct {
	name string
	deps []string
	run  func(p *analysis.Pipeline, r *Results)
}

// experiments lists every table and figure in serial (declaration) order.
// Dependencies must appear before their dependents so the serial runner
// can execute the slice front to back.
func experiments() []experiment {
	return []experiment{
		{name: "Fig1", run: func(p *analysis.Pipeline, r *Results) { r.Fig1 = p.Fig1Classification() }},
		{name: "Fig2", run: func(p *analysis.Pipeline, r *Results) { r.Fig2 = p.Fig2Visibility() }},
		{name: "Dealloc", run: func(p *analysis.Pipeline, r *Results) { r.Dealloc = p.DeallocAnalysis() }},
		{name: "Table1", run: func(p *analysis.Pipeline, r *Results) { r.Table1 = p.Table1RPKIUptake() }},
		{name: "Sec5", run: func(p *analysis.Pipeline, r *Results) { r.Sec5 = p.Sec5IRR() }},
		{name: "Fig4", run: func(p *analysis.Pipeline, r *Results) { r.Fig4 = p.Fig4RPKIValidHijacks() }},
		{name: "Fig5", run: func(p *analysis.Pipeline, r *Results) { r.Fig5 = p.Fig5ROAStatus() }},
		{name: "Fig6", run: func(p *analysis.Pipeline, r *Results) { r.Fig6 = p.Fig6UnallocatedTimeline() }},
		{name: "Fig7", run: func(p *analysis.Pipeline, r *Results) { r.Fig7 = p.Fig7FreePools() }},
		{name: "Table2", run: func(p *analysis.Pipeline, r *Results) { r.Table2 = p.Table2SBLBreakdown() }},
		{name: "ROV", run: func(p *analysis.Pipeline, r *Results) { r.ROV = p.ROVCounterfactual() }},
		{name: "AS0WhatIf", run: func(p *analysis.Pipeline, r *Results) { r.AS0WhatIf = p.AS0WhatIf() }},
		{name: "MaxLength", run: func(p *analysis.Pipeline, r *Results) { r.MaxLength = p.MaxLengthAnalysis() }},
		{name: "PathEnd", deps: []string{"Fig4"},
			run: func(p *analysis.Pipeline, r *Results) { r.PathEnd = p.PathEndWithCase(r.Fig4.CasePrefix) }},
		{name: "Hijackers", run: func(p *analysis.Pipeline, r *Results) { r.Hijackers = p.SerialHijackers(3, 0.5, 365) }},
		{name: "MOAS", run: func(p *analysis.Pipeline, r *Results) { r.MOAS = p.MOASSweep() }},
	}
}

// runExperiments executes the experiment graph over the pipeline.
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs everything
// sequentially on the calling goroutine in declaration order.
//
// The parallel scheduler starts one goroutine per experiment, gated on
// its dependencies' completion channels, with a semaphore bounding how
// many run at once. Every experiment writes a distinct Results field and
// the pipeline is immutable after construction, so no locking is needed
// beyond the completion signals; the final WaitGroup join publishes all
// writes to the caller. Because every experiment is a pure function of
// the pipeline, the assembled Results — and anything rendered from it —
// is byte-identical whichever path runs.
func runExperiments(p *analysis.Pipeline, workers int) Results {
	exps := experiments()
	var r Results
	r.Health = p.HealthReport()
	if workers == 1 {
		for _, e := range exps {
			e.run(p, &r)
		}
		return r
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	done := make(map[string]chan struct{}, len(exps))
	for _, e := range exps {
		done[e.name] = make(chan struct{})
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, e := range exps {
		wg.Add(1)
		go func(e experiment) {
			defer wg.Done()
			for _, d := range e.deps {
				<-done[d]
			}
			sem <- struct{}{}
			e.run(p, &r)
			close(done[e.name])
			<-sem
		}(e)
	}
	wg.Wait()
	return r
}
