#!/usr/bin/env bash
# check.sh — the single source of truth for every repo check. CI
# (.github/workflows/ci.yml) and the Makefile both run these commands, so
# local runs and the gate stay in lockstep.
#
# Usage: scripts/check.sh [build|vet|fmt|test|race|bench|fuzz|faults|chaos|warmstart|all]
set -euo pipefail
cd "$(dirname "$0")/.."

# Every native fuzz target in the repo, one "package target" pair per
# line. `go test -fuzz` accepts a single target per invocation, hence the
# loop in fuzz().
FUZZ_TARGETS="
internal/bgp FuzzDecodeUpdate
internal/bgp FuzzReadMessage
internal/drop FuzzParse
internal/irr FuzzParse
internal/irr FuzzParseJournal
internal/mrt FuzzReader
internal/mrt FuzzReaderLenient
internal/netx FuzzParsePrefix
internal/netx FuzzParseAddr
internal/rirstats FuzzParseFile
internal/rpki FuzzParseSnapshotCSV
internal/rtr FuzzReadPDU
"

build() { go build ./...; }

vet() { go vet ./...; }

fmt() {
  local out
  out="$(gofmt -l .)"
  if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    return 1
  fi
}

test_() { go test ./...; }

race() { go test -race ./...; }

# bench compiles and runs every benchmark exactly once — a smoke guard
# for bench_test.go, not a measurement. CI uploads the output as the
# BENCH_* trajectory artifact.
bench() { go test -bench=. -benchtime=1x -run='^$' ./...; }

# benchgate is the allocation-regression gate: the zero-alloc unit tests
# (mrt.Reader.Next in reuse mode, the post-Close rib point queries) plus
# scripts/bench.sh check, which re-measures BenchmarkPipelineNew,
# BenchmarkEndToEnd, and BenchmarkWarmStart and fails if allocs/op
# regresses more than BENCH_ALLOC_TOLERANCE % over the committed
# BENCH_PR5.json numbers.
benchgate() {
  go test -run 'TestReaderNextReuseAllocs' ./internal/mrt
  go test -run 'TestPointQueryAllocs' ./internal/rib
  scripts/bench.sh check
}

# fuzz runs each seed corpus plus FUZZ_SMOKE_TIME (default 10s) of new
# inputs per target.
fuzz() {
  local t="${FUZZ_SMOKE_TIME:-10s}"
  echo "$FUZZ_TARGETS" | while read -r pkg target; do
    [ -z "$pkg" ] && continue
    echo "--- fuzz $pkg $target ($t)"
    go test -run='^$' -fuzz="^${target}\$" -fuzztime="$t" "./$pkg"
  done
}

# faults runs the fault-tolerance suite end to end: the ingest health
# accounting and deterministic fault-injection harness, the lenient
# (resynchronizing) MRT reader, and the damaged-archive acceptance tests
# (collector quarantine, strict-mode offsets, serial-vs-parallel
# determinism over damage).
faults() {
  go test ./internal/ingest/...
  go test -run 'Lenient|Strict|Damaged' ./internal/mrt .
}

# chaos runs the live-session resilience suite under the race detector:
# the supervisor/backoff state machine, chaos net.Conn fault injection,
# the BGP hold-timer/write-deadline/graceful-restart tests, the chaos
# soak (50 injected faults must converge to the fault-free RIB), and the
# RTR timer state machine with serial wraparound.
chaos() {
  go test -race -count=1 ./internal/session
  go test -race -count=1 ./internal/ingest/faultinject
  go test -race -count=1 \
    -run 'TestHoldTimerExpiry|TestWriteTimeout|TestCollectorGracefulRestart|TestChaosSoak' \
    ./internal/bgpd
  go test -race -count=1 \
    -run 'TestSerialBefore|TestPollSurvivesSerialWraparound|TestClientSession' \
    ./internal/rtr
}

# warmstart is the warm-start acceptance gate, driven through the real
# CLI. It saves an archive, renders it with the index cache disabled,
# renders it once more with the cache on (a cold build that writes the
# snapshot), then renders three warm loads — parallel, serial, strict —
# and requires all five reports byte-identical. It finishes by checking
# the committed BENCH_PR5.json holds the warm-start bar: WarmStart at
# most WARM_RATIO % (default 20) of PipelineNew/serial in both ns/op
# and allocs/op.
warmstart() {
  local tmp scale
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  scale="${WARMSTART_SCALE:-512}"
  echo "--- warmstart: generating archive (scale $scale)"
  go run ./cmd/dropscope -scale "$scale" -save "$tmp/arch" >/dev/null
  echo "--- warmstart: cold render, cache off"
  go run ./cmd/dropscope -load "$tmp/arch" -index-cache off >"$tmp/cold.txt"
  echo "--- warmstart: first cached load (cold build, writes snapshot)"
  go run ./cmd/dropscope -load "$tmp/arch" >"$tmp/first.txt"
  if [ ! -f "$tmp/arch/ribsnap/index.ribsnap" ]; then
    echo "warmstart: snapshot was not written" >&2
    return 1
  fi
  echo "--- warmstart: warm loads (parallel, serial, strict)"
  go run ./cmd/dropscope -load "$tmp/arch" >"$tmp/warm.txt"
  go run ./cmd/dropscope -load "$tmp/arch" -serial >"$tmp/warm-serial.txt"
  go run ./cmd/dropscope -load "$tmp/arch" -strict >"$tmp/warm-strict.txt"
  local f
  for f in first warm warm-serial warm-strict; do
    if ! cmp -s "$tmp/cold.txt" "$tmp/$f.txt"; then
      echo "warmstart: $f render differs from the cold render" >&2
      return 1
    fi
  done
  echo "--- warmstart: all renders byte-identical"
  warmratio
}

# warmratio checks the committed warm/cold ratio in BENCH_PR5.json.
warmratio() {
  if [ ! -f BENCH_PR5.json ]; then
    echo "BENCH_PR5.json missing; nothing to gate against" >&2
    return 1
  fi
  awk -v tol="${WARM_RATIO:-20}" '
    /"bench"/ {
      name = $0; sub(/.*"bench": *"/, "", name); sub(/".*/, "", name)
      after = $0; sub(/.*"after": *{/, "", after)
      ns = after; sub(/.*"ns_op": */, "", ns); sub(/[,}].*/, "", ns)
      al = after; sub(/.*"allocs_op": */, "", al); sub(/[,}].*/, "", al)
      NS[name] = ns; AL[name] = al
    }
    END {
      if (NS["WarmStart"] == "" || NS["PipelineNew/serial"] == "") {
        print "warmratio: WarmStart or PipelineNew/serial missing from BENCH_PR5.json" > "/dev/stderr"
        exit 1
      }
      rns = NS["WarmStart"] / NS["PipelineNew/serial"] * 100
      ral = AL["WarmStart"] / AL["PipelineNew/serial"] * 100
      printf "warm/cold committed ratio: %.1f%% ns/op, %.1f%% allocs/op (bar %d%%)\n", rns, ral, tol
      if (rns > tol || ral > tol) {
        print "WARM GATE FAIL: warm start exceeds the ratio bar" > "/dev/stderr"
        exit 1
      }
      print "WARM GATE OK"
    }' BENCH_PR5.json
}

all() { build; vet; fmt; test_; race; bench; }

case "${1:-all}" in
  build) build ;;
  vet) vet ;;
  fmt) fmt ;;
  test) test_ ;;
  race) race ;;
  bench) bench ;;
  benchgate) benchgate ;;
  fuzz) fuzz ;;
  faults) faults ;;
  chaos) chaos ;;
  warmstart) warmstart ;;
  warmratio) warmratio ;;
  all) all ;;
  *)
    echo "usage: $0 [build|vet|fmt|test|race|bench|benchgate|fuzz|faults|chaos|warmstart|all]" >&2
    exit 2
    ;;
esac
