#!/usr/bin/env bash
# check.sh — the single source of truth for every repo check. CI
# (.github/workflows/ci.yml) and the Makefile both run these commands, so
# local runs and the gate stay in lockstep.
#
# Usage: scripts/check.sh [build|vet|fmt|test|race|bench|fuzz|faults|chaos|all]
set -euo pipefail
cd "$(dirname "$0")/.."

# Every native fuzz target in the repo, one "package target" pair per
# line. `go test -fuzz` accepts a single target per invocation, hence the
# loop in fuzz().
FUZZ_TARGETS="
internal/bgp FuzzDecodeUpdate
internal/bgp FuzzReadMessage
internal/drop FuzzParse
internal/irr FuzzParse
internal/irr FuzzParseJournal
internal/mrt FuzzReader
internal/mrt FuzzReaderLenient
internal/netx FuzzParsePrefix
internal/netx FuzzParseAddr
internal/rirstats FuzzParseFile
internal/rpki FuzzParseSnapshotCSV
internal/rtr FuzzReadPDU
"

build() { go build ./...; }

vet() { go vet ./...; }

fmt() {
  local out
  out="$(gofmt -l .)"
  if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    return 1
  fi
}

test_() { go test ./...; }

race() { go test -race ./...; }

# bench compiles and runs every benchmark exactly once — a smoke guard
# for bench_test.go, not a measurement. CI uploads the output as the
# BENCH_* trajectory artifact.
bench() { go test -bench=. -benchtime=1x -run='^$' ./...; }

# benchgate is the allocation-regression gate: the zero-alloc unit tests
# (mrt.Reader.Next in reuse mode, the post-Close rib point queries) plus
# scripts/bench.sh check, which re-measures BenchmarkPipelineNew and
# BenchmarkEndToEnd and fails if allocs/op regresses more than
# BENCH_ALLOC_TOLERANCE % over the committed BENCH_PR4.json numbers.
benchgate() {
  go test -run 'TestReaderNextReuseAllocs' ./internal/mrt
  go test -run 'TestPointQueryAllocs' ./internal/rib
  scripts/bench.sh check
}

# fuzz runs each seed corpus plus FUZZ_SMOKE_TIME (default 10s) of new
# inputs per target.
fuzz() {
  local t="${FUZZ_SMOKE_TIME:-10s}"
  echo "$FUZZ_TARGETS" | while read -r pkg target; do
    [ -z "$pkg" ] && continue
    echo "--- fuzz $pkg $target ($t)"
    go test -run='^$' -fuzz="^${target}\$" -fuzztime="$t" "./$pkg"
  done
}

# faults runs the fault-tolerance suite end to end: the ingest health
# accounting and deterministic fault-injection harness, the lenient
# (resynchronizing) MRT reader, and the damaged-archive acceptance tests
# (collector quarantine, strict-mode offsets, serial-vs-parallel
# determinism over damage).
faults() {
  go test ./internal/ingest/...
  go test -run 'Lenient|Strict|Damaged' ./internal/mrt .
}

# chaos runs the live-session resilience suite under the race detector:
# the supervisor/backoff state machine, chaos net.Conn fault injection,
# the BGP hold-timer/write-deadline/graceful-restart tests, the chaos
# soak (50 injected faults must converge to the fault-free RIB), and the
# RTR timer state machine with serial wraparound.
chaos() {
  go test -race -count=1 ./internal/session
  go test -race -count=1 ./internal/ingest/faultinject
  go test -race -count=1 \
    -run 'TestHoldTimerExpiry|TestWriteTimeout|TestCollectorGracefulRestart|TestChaosSoak' \
    ./internal/bgpd
  go test -race -count=1 \
    -run 'TestSerialBefore|TestPollSurvivesSerialWraparound|TestClientSession' \
    ./internal/rtr
}

all() { build; vet; fmt; test_; race; bench; }

case "${1:-all}" in
  build) build ;;
  vet) vet ;;
  fmt) fmt ;;
  test) test_ ;;
  race) race ;;
  bench) bench ;;
  benchgate) benchgate ;;
  fuzz) fuzz ;;
  faults) faults ;;
  chaos) chaos ;;
  all) all ;;
  *)
    echo "usage: $0 [build|vet|fmt|test|race|bench|benchgate|fuzz|faults|chaos|all]" >&2
    exit 2
    ;;
esac
