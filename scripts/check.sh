#!/usr/bin/env bash
# check.sh — the single source of truth for every repo check. CI
# (.github/workflows/ci.yml) and the Makefile both run these commands, so
# local runs and the gate stay in lockstep.
#
# Usage: scripts/check.sh [build|vet|fmt|test|race|bench|fuzz|faults|chaos|warmstart|serve|soak|crash|overload|shard|shardgate|delta|deltaratio|all]
set -euo pipefail
cd "$(dirname "$0")/.."

# Every native fuzz target in the repo, one "package target" pair per
# line. `go test -fuzz` accepts a single target per invocation, hence the
# loop in fuzz().
FUZZ_TARGETS="
internal/bgp FuzzDecodeUpdate
internal/bgp FuzzReadMessage
internal/drop FuzzParse
internal/irr FuzzParse
internal/irr FuzzParseJournal
internal/mrt FuzzReader
internal/mrt FuzzReaderLenient
internal/netx FuzzParsePrefix
internal/netx FuzzParseAddr
internal/ribsnap FuzzSnapshotLoad
internal/rirstats FuzzParseFile
internal/rpki FuzzParseSnapshotCSV
internal/rtr FuzzReadPDU
"

build() { go build ./...; }

vet() { go vet ./...; }

fmt() {
  local out
  out="$(gofmt -l .)"
  if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    return 1
  fi
}

test_() { go test ./...; }

race() { go test -race ./...; }

# bench compiles and runs every benchmark exactly once — a smoke guard
# for bench_test.go, not a measurement. CI uploads the output as the
# BENCH_* trajectory artifact.
bench() { go test -bench=. -benchtime=1x -run='^$' ./...; }

# benchgate is the allocation-regression gate: the zero-alloc unit tests
# (mrt.Reader.Next in reuse mode, the post-Close rib point queries) plus
# scripts/bench.sh check, which re-measures BenchmarkPipelineNew,
# BenchmarkEndToEnd, and BenchmarkWarmStart and fails if allocs/op
# regresses more than BENCH_ALLOC_TOLERANCE % over the committed
# BENCH_PR5.json numbers.
benchgate() {
  go test -run 'TestReaderNextReuseAllocs' ./internal/mrt
  go test -run 'TestPointQueryAllocs' ./internal/rib
  scripts/bench.sh check
}

# fuzz runs each seed corpus plus FUZZ_SMOKE_TIME (default 10s) of new
# inputs per target.
fuzz() {
  local t="${FUZZ_SMOKE_TIME:-10s}"
  echo "$FUZZ_TARGETS" | while read -r pkg target; do
    [ -z "$pkg" ] && continue
    echo "--- fuzz $pkg $target ($t)"
    go test -run='^$' -fuzz="^${target}\$" -fuzztime="$t" "./$pkg"
  done
}

# faults runs the fault-tolerance suite end to end: the ingest health
# accounting and deterministic fault-injection harness, the lenient
# (resynchronizing) MRT reader, and the damaged-archive acceptance tests
# (collector quarantine, strict-mode offsets, serial-vs-parallel
# determinism over damage).
faults() {
  go test ./internal/ingest/...
  go test -run 'Lenient|Strict|Damaged' ./internal/mrt .
}

# chaos runs the live-session resilience suite under the race detector:
# the supervisor/backoff state machine, chaos net.Conn fault injection,
# the BGP hold-timer/write-deadline/graceful-restart tests, the chaos
# soak (50 injected faults must converge to the fault-free RIB), and the
# RTR timer state machine with serial wraparound.
chaos() {
  go test -race -count=1 ./internal/session
  go test -race -count=1 ./internal/ingest/faultinject
  go test -race -count=1 \
    -run 'TestHoldTimerExpiry|TestWriteTimeout|TestCollectorGracefulRestart|TestChaosSoak' \
    ./internal/bgpd
  go test -race -count=1 \
    -run 'TestSerialBefore|TestPollSurvivesSerialWraparound|TestClientSession' \
    ./internal/rtr
}

# warmstart is the warm-start acceptance gate, driven through the real
# CLI. It saves an archive, renders it with the index cache disabled,
# renders it once more with the cache on (a cold build that writes the
# snapshot), then renders three warm loads — parallel, serial, strict —
# and requires all five reports byte-identical. It finishes by checking
# the committed BENCH_PR5.json holds the warm-start bar: WarmStart at
# most WARM_RATIO % (default 20) of PipelineNew/serial in both ns/op
# and allocs/op.
warmstart() {
  local tmp scale
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  scale="${WARMSTART_SCALE:-512}"
  echo "--- warmstart: generating archive (scale $scale)"
  go run ./cmd/dropscope -scale "$scale" -save "$tmp/arch" >/dev/null
  echo "--- warmstart: cold render, cache off"
  go run ./cmd/dropscope -load "$tmp/arch" -index-cache off >"$tmp/cold.txt"
  echo "--- warmstart: first cached load (cold build, writes snapshot)"
  go run ./cmd/dropscope -load "$tmp/arch" >"$tmp/first.txt"
  if [ ! -f "$tmp/arch/ribsnap/index.ribsnap" ]; then
    echo "warmstart: snapshot was not written" >&2
    return 1
  fi
  echo "--- warmstart: warm loads (parallel, serial, strict)"
  go run ./cmd/dropscope -load "$tmp/arch" >"$tmp/warm.txt"
  go run ./cmd/dropscope -load "$tmp/arch" -serial >"$tmp/warm-serial.txt"
  go run ./cmd/dropscope -load "$tmp/arch" -strict >"$tmp/warm-strict.txt"
  local f
  for f in first warm warm-serial warm-strict; do
    if ! cmp -s "$tmp/cold.txt" "$tmp/$f.txt"; then
      echo "warmstart: $f render differs from the cold render" >&2
      return 1
    fi
  done
  echo "--- warmstart: all renders byte-identical"
  warmratio
}

# warmratio checks the committed warm/cold ratio in BENCH_PR5.json.
warmratio() {
  if [ ! -f BENCH_PR5.json ]; then
    echo "BENCH_PR5.json missing; nothing to gate against" >&2
    return 1
  fi
  awk -v tol="${WARM_RATIO:-20}" '
    /"bench"/ {
      name = $0; sub(/.*"bench": *"/, "", name); sub(/".*/, "", name)
      after = $0; sub(/.*"after": *{/, "", after)
      ns = after; sub(/.*"ns_op": */, "", ns); sub(/[,}].*/, "", ns)
      al = after; sub(/.*"allocs_op": */, "", al); sub(/[,}].*/, "", al)
      NS[name] = ns; AL[name] = al
    }
    END {
      if (NS["WarmStart"] == "" || NS["PipelineNew/serial"] == "") {
        print "warmratio: WarmStart or PipelineNew/serial missing from BENCH_PR5.json" > "/dev/stderr"
        exit 1
      }
      rns = NS["WarmStart"] / NS["PipelineNew/serial"] * 100
      ral = AL["WarmStart"] / AL["PipelineNew/serial"] * 100
      printf "warm/cold committed ratio: %.1f%% ns/op, %.1f%% allocs/op (bar %d%%)\n", rns, ral, tol
      if (rns > tol || ral > tol) {
        print "WARM GATE FAIL: warm start exceeds the ratio bar" > "/dev/stderr"
        exit 1
      }
      print "WARM GATE OK"
    }' BENCH_PR5.json
}

# serve is the serving-layer acceptance gate, driven through the real
# daemon binary. It boots dropscoped over a synthgen archive, probes
# every endpoint, then exercises the SIGHUP generation swap while a
# request loop runs against the daemon — the swap must change the
# reported generation digest without a single failed request. It
# finishes with a measured load run (scripts/loadtest.sh) gated against
# the committed BENCH_PR6.json by servegate.
serve() {
  local tmp scale addr pid
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  scale="${SERVE_SCALE:-512}"
  addr="${SERVE_ADDR:-127.0.0.1:8434}"

  echo "--- serve: building binaries"
  go build -o "$tmp/dropscoped" ./cmd/dropscoped
  go build -o "$tmp/synthgen" ./cmd/synthgen
  echo "--- serve: generating archive (scale $scale, seed 1)"
  "$tmp/synthgen" -dir "$tmp/arch-1" -scale "$scale" -seed 1 >/dev/null
  ln -s "$tmp/arch-1" "$tmp/arch"

  "$tmp/dropscoped" -archive "$tmp/arch" -listen "$addr" &
  pid=$!
  # shellcheck disable=SC2064
  trap "kill $pid 2>/dev/null || true; rm -rf '$tmp'" EXIT

  echo "--- serve: waiting for /healthz on $addr"
  local i up=""
  for i in $(seq 1 100); do
    if curl -sf "http://$addr/healthz" >"$tmp/healthz.json" 2>/dev/null; then
      up=1
      break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve: daemon exited before becoming healthy" >&2
      return 1
    fi
    sleep 0.3
  done
  if [ -z "$up" ]; then
    echo "serve: daemon never became healthy" >&2
    return 1
  fi
  local gen1
  gen1="$(sed 's/.*"generation":"\([0-9a-f]*\)".*/\1/' "$tmp/healthz.json")"
  echo "--- serve: serving generation ${gen1:0:12}"

  echo "--- serve: probing every endpoint"
  probe() {
    local body
    if ! body="$(curl -sf "http://$addr$1")"; then
      echo "serve: GET $1 failed" >&2
      return 1
    fi
    case "$body" in
      *"$2"*) ;;
      *)
        echo "serve: GET $1: expected $2 in response: $body" >&2
        return 1
        ;;
    esac
  }
  probe "/v1/visibility?prefix=192.0.2.0%2F24" '"peers_total"'
  probe "/v1/rov?prefix=192.0.2.0%2F24&origin=64500" '"validity"'
  probe "/v1/drop?prefix=192.0.2.0%2F24" '"listed"'
  probe "/v1/origins?prefix=192.0.2.0%2F24" '"spans"'
  probe "/v1/figures/2022-03-30" '"routed_addrs"'
  probe "/healthz" '"status":"ok"'
  probe "/metrics" '"requests_total"'

  echo "--- serve: SIGHUP swap under load (seed 2 archive)"
  "$tmp/synthgen" -dir "$tmp/arch-2" -scale "$scale" -seed 2 >/dev/null
  : >"$tmp/load-failures"
  (
    while [ ! -f "$tmp/stop" ]; do
      curl -sf "http://$addr/v1/visibility?prefix=192.0.2.0%2F24" >/dev/null \
        || echo fail >>"$tmp/load-failures"
    done
  ) &
  local loader=$!
  ln -sfn "$tmp/arch-2" "$tmp/arch"
  kill -HUP "$pid"
  local gen2=""
  for i in $(seq 1 100); do
    gen2="$(curl -sf "http://$addr/healthz" | sed 's/.*"generation":"\([0-9a-f]*\)".*/\1/' || true)"
    if [ -n "$gen2" ] && [ "$gen2" != "$gen1" ]; then
      break
    fi
    sleep 0.3
  done
  touch "$tmp/stop"
  wait "$loader"
  if [ -z "$gen2" ] || [ "$gen2" = "$gen1" ]; then
    echo "serve: generation digest did not change after SIGHUP" >&2
    return 1
  fi
  if [ -s "$tmp/load-failures" ]; then
    echo "serve: $(wc -l <"$tmp/load-failures") requests failed during the swap" >&2
    return 1
  fi
  echo "--- serve: swapped to generation ${gen2:0:12} with zero dropped requests"
  kill "$pid"
  wait "$pid" 2>/dev/null || true

  echo "--- serve: measured load run"
  scripts/loadtest.sh "$tmp/load.json"
  cat "$tmp/load.json"
  servegate "$tmp/load.json"
}

# servegate compares a loadtest JSON against the committed BENCH_PR6.json
# baseline: QPS may not fall below baseline/SERVE_RATIO and p99 may not
# exceed baseline*SERVE_RATIO (default factor 5 — CI runners vary widely
# in absolute speed; a real serving regression blows past 5x).
servegate() {
  local f="${1:-}"
  if [ ! -f BENCH_PR6.json ]; then
    echo "BENCH_PR6.json missing; nothing to gate against" >&2
    return 1
  fi
  if [ -z "$f" ] || [ ! -f "$f" ]; then
    echo "servegate: usage: servegate LOADTEST.json" >&2
    return 1
  fi
  awk -v tol="${SERVE_RATIO:-5}" '
    function val(s) { sub(/.*: */, "", s); sub(/[,}].*/, "", s); return s + 0 }
    FNR == 1 { file++ }
    /"qps"/ { q[file] = val($0) }
    /"p99_us"/ { p[file] = val($0) }
    END {
      if (q[1] == 0 || p[1] == 0 || q[2] == 0 || p[2] == 0) {
        print "servegate: qps/p99_us missing from baseline or run" > "/dev/stderr"
        exit 1
      }
      printf "serve gate: qps %.0f (baseline %.0f, floor %.0f), p99 %.0f us (baseline %.0f, ceiling %.0f)\n",
        q[2], q[1], q[1] / tol, p[2], p[1], p[1] * tol
      if (q[2] < q[1] / tol) {
        print "SERVE GATE FAIL: QPS below baseline/" tol > "/dev/stderr"
        exit 1
      }
      if (p[2] > p[1] * tol) {
        print "SERVE GATE FAIL: p99 above baseline*" tol > "/dev/stderr"
        exit 1
      }
      print "SERVE GATE OK"
    }' BENCH_PR6.json "$f"
}

# soak runs the serving-layer robustness suite under the race detector:
# the HTTP chaos soak (injected connection resets/stalls/partial
# writes/truncation while generations swap and deliberate panics fire;
# every admitted response byte-identical, every retired generation
# drained to refcount zero, zero goroutine leaks), the lifecycle leak
# test, panic isolation, admission shed/queue behavior, drain, the
# self-healing reload supervisor on a fake clock, and slowloris
# resistance.
soak() {
  go test -race -count=1 -timeout 10m \
    -run 'TestChaosSoakServe|TestGenerationLifecycleLeak|TestPanicReleasesGeneration|TestAdmission|TestDrainRejectsNewArrivals|TestRequestDeadlines|TestReload|TestWatchTriggersReload|TestSlowlorisCut' \
    ./internal/serve
}

# crash runs the durability suite under the race detector: crash
# recovery at every step of the fsync'd snapshot write protocol, disk
# fault injection (short writes, ENOSPC, silent bit flips, fail-stop
# crashes) through the ribsnap FS seam, the generation manifest journal
# (replay, torn tails, corrupt records, last-record-wins), the snapshot
# store lifecycle (promote/retire/retention GC/corrupt marks/debris
# reconcile, temp sweeps), and the scrubber bitrot soak — detect,
# degrade, cold-rebuild heal under query load with zero failed queries.
crash() {
  go test -race -count=1 -timeout 10m \
    -run 'TestCrash|TestWrite|TestSweepTemps|TestManifest|TestReadManifest|TestStore' \
    ./internal/ribsnap
  go test -race -count=1 -run 'TestDiskFS' ./internal/ingest/faultinject
  go test -race -count=1 -timeout 10m -run 'TestScrub' ./internal/serve
}

# overload is the admission-control acceptance gate. It measures two
# load runs over the same archive on the same machine: a baseline at the
# gate's capacity (8 clients, 8 inflight slots) and a 4x overload run
# (32 clients against the same gate, 503s counted as shed). The gate
# requires (a) the overload run actually shed — excess load answers 503,
# it does not queue up; (b) admitted p99 under overload stays within
# OVERLOAD_P99X (default 8) of the same-machine baseline p99 — shedding
# is what keeps the admitted tail bounded. The tolerance is wide on
# purpose: the measured latency is client-side, so with 4x the client
# goroutines contending for the same cores it includes client scheduling
# delay on top of queue wait + service floor (on a 1-CPU runner the
# observed ratio is ~5x). The disaster the gate must catch is the
# no-shedding alternative, where 4x offered load queues up and p99
# degrades unboundedly (~4x the duration of the run, hundreds of x).
# And (c) the overload run holds against the committed BENCH_PR7.json
# within OVERLOAD_RATIO (default 5, absolute cross-machine tolerance).
overload() {
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  echo "--- overload: baseline run (8 clients, 8 slots)"
  CLIENTS=8 MAX_INFLIGHT=8 scripts/loadtest.sh --overload "$tmp/base.json"
  cat "$tmp/base.json"
  echo "--- overload: 4x overload run (32 clients, 8 slots)"
  CLIENTS=32 MAX_INFLIGHT=8 scripts/loadtest.sh --overload "$tmp/over.json"
  cat "$tmp/over.json"
  awk -v tol="${OVERLOAD_P99X:-8}" '
    function val(s) { sub(/.*: */, "", s); sub(/[,}].*/, "", s); return s + 0 }
    FNR == 1 { file++ }
    /"p99_us"/ { p[file] = val($0) }
    /"shed"/ && !/"shed_rate"/ { s[file] = val($0) }
    END {
      if (p[1] == 0 || p[2] == 0) {
        print "overload: p99_us missing from a run" > "/dev/stderr"
        exit 1
      }
      printf "overload gate: admitted p99 %.0f us under 4x load vs %.0f us baseline (ceiling %.0fx), shed %d\n",
        p[2], p[1], tol, s[2]
      if (s[2] == 0) {
        print "OVERLOAD GATE FAIL: overload run shed nothing; the gate is not engaging" > "/dev/stderr"
        exit 1
      }
      if (p[2] > p[1] * tol) {
        print "OVERLOAD GATE FAIL: admitted p99 degraded more than " tol "x under overload" > "/dev/stderr"
        exit 1
      }
      print "OVERLOAD GATE OK (same-machine)"
    }' "$tmp/base.json" "$tmp/over.json"
  overloadgate "$tmp/over.json"
}

# overloadgate compares an overload loadtest JSON against the committed
# BENCH_PR7.json baseline: the run must shed (shed > 0) and its admitted
# p99 may not exceed baseline*OVERLOAD_RATIO (default 5 — same
# cross-machine tolerance rationale as servegate).
overloadgate() {
  local f="${1:-}"
  if [ ! -f BENCH_PR7.json ]; then
    echo "BENCH_PR7.json missing; nothing to gate against" >&2
    return 1
  fi
  if [ -z "$f" ] || [ ! -f "$f" ]; then
    echo "overloadgate: usage: overloadgate OVERLOAD.json" >&2
    return 1
  fi
  awk -v tol="${OVERLOAD_RATIO:-5}" '
    function val(s) { sub(/.*: */, "", s); sub(/[,}].*/, "", s); return s + 0 }
    FNR == 1 { file++ }
    /"p99_us"/ { p[file] = val($0) }
    /"shed"/ && !/"shed_rate"/ { s[file] = val($0) }
    END {
      if (p[1] == 0 || p[2] == 0) {
        print "overloadgate: p99_us missing from baseline or run" > "/dev/stderr"
        exit 1
      }
      printf "overload gate: admitted p99 %.0f us (baseline %.0f, ceiling %.0f), shed %d (baseline %d)\n",
        p[2], p[1], p[1] * tol, s[2], s[1]
      if (s[2] == 0) {
        print "OVERLOAD GATE FAIL: run shed nothing" > "/dev/stderr"
        exit 1
      }
      if (p[2] > p[1] * tol) {
        print "OVERLOAD GATE FAIL: admitted p99 above baseline*" tol > "/dev/stderr"
        exit 1
      }
      print "OVERLOAD GATE OK (vs committed baseline)"
    }' BENCH_PR7.json "$f"
}

# shard is the sharded-index acceptance gate. It runs the boundary
# property suite (every query at, one below, and one above each shard
# cut byte-identical to the unsharded index for K in {1,2,7}), the
# shard-set residency/eviction tests (the soak under -race), and the
# sharded serving tests; then it drives the real CLI over a
# volume-amplified synthgen archive and requires the sharded renders —
# cold and warm, through the persisted sharded generation — to be
# byte-identical to the unsharded render.
shard() {
  echo "--- shard: boundary property suite (K in {1,2,7})"
  go test -count=1 -run 'TestShardedByteIdentical|TestFrozenShardsShape|TestShardedValidation' ./internal/rib
  echo "--- shard: shard-set residency and manifest tests"
  go test -count=1 -run 'TestShardManifest|TestWriteLoadShards|TestLoadShardsRefusesCorrupt|TestOpenShardSetStale|TestShardSet' ./internal/ribsnap
  echo "--- shard: eviction soak under the race detector"
  go test -race -count=1 -run 'TestShardEvictionSoak' ./internal/ribsnap
  echo "--- shard: sharded serving, metrics, and per-shard scrub"
  go test -count=1 -run 'TestShardedServe|TestShardedMetrics|TestShardScrub' ./internal/serve

  local tmp scale
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  scale="${SHARD_SCALE:-512}"
  echo "--- shard: generating volume-amplified archive (scale $scale, volume 2048)"
  go run ./cmd/synthgen -dir "$tmp/arch" -scale "$scale" -seed 1 -volume 2048 >/dev/null
  echo "--- shard: unsharded render (cache off)"
  go run ./cmd/dropscope -load "$tmp/arch" -index-cache off >"$tmp/unsharded.txt"
  echo "--- shard: sharded cold render (K=7, writes the snapshot)"
  go run ./cmd/dropscope -load "$tmp/arch" -shards 7 >"$tmp/sharded-cold.txt"
  echo "--- shard: sharded warm render (K=7, mapped snapshot)"
  go run ./cmd/dropscope -load "$tmp/arch" -shards 7 >"$tmp/sharded-warm.txt"
  echo "--- shard: sharded serial and strict renders (K=7)"
  go run ./cmd/dropscope -load "$tmp/arch" -shards 7 -serial >"$tmp/sharded-serial.txt"
  go run ./cmd/dropscope -load "$tmp/arch" -shards 7 -strict >"$tmp/sharded-strict.txt"
  local f
  for f in sharded-cold sharded-warm sharded-serial sharded-strict; do
    if ! cmp -s "$tmp/unsharded.txt" "$tmp/$f.txt"; then
      echo "shard: $f render differs from the unsharded render" >&2
      return 1
    fi
  done
  echo "--- shard: all renders byte-identical"
}

# shardgate is the parallel-build performance gate: BenchmarkShardFreeze
# must show the 4-way sharded freeze+persist at least SHARD_RATIO x
# (default 1.5) faster than the single-file path. The win comes from
# building and encoding shards on the worker pool, so the gate only
# engages on machines with 4+ cores — below that there is no
# parallelism to measure and the shard overhead dominates.
shardgate() {
  local cores
  cores="$(nproc 2>/dev/null || echo 1)"
  if [ "$cores" -lt 4 ]; then
    echo "shardgate: $cores core(s) < 4; parallel shard build gate skipped"
    return 0
  fi
  go test -run '^$' -bench 'BenchmarkShardFreeze' \
    -benchtime "${SHARD_BENCHTIME:-3x}" -count "${SHARD_COUNT:-3}" . | tee shard-bench.txt
  awk -v want="${SHARD_RATIO:-1.5}" '
    $1 ~ /ShardFreeze\/single/ && $4 == "ns/op" { s += $3; sn++ }
    $1 ~ /ShardFreeze\/sharded/ && $4 == "ns/op" { p += $3; pn++ }
    END {
      if (sn == 0 || pn == 0) {
        print "shardgate: benchmark output missing single or sharded runs" > "/dev/stderr"
        exit 1
      }
      r = (s / sn) / (p / pn)
      printf "shard gate: single %.0f ns/op, sharded %.0f ns/op, speedup %.2fx (floor %.1fx)\n",
        s / sn, p / pn, r, want
      if (r < want) {
        print "SHARD GATE FAIL: sharded build under " want "x the single-file build" > "/dev/stderr"
        exit 1
      }
      print "SHARD GATE OK"
    }' shard-bench.txt
}

# delta is the incremental-ingest acceptance gate. It runs the
# overlay/merge property suite, the append-only contract tests, and the
# daemon delta-reload tests; then it drives the real CLI: a snapshot
# seeded on the base archive must serve an append load over the grown
# archive — decoding only the appended bytes — whose renders are
# byte-identical to a cache-off cold rebuild of the grown archive, in
# parallel, serial, strict, and sharded modes. A delta that silently
# fell back cold cannot pass the lenient comparisons: the fallback
# counts a discarded-snapshot skip, which surfaces in the report's
# data-health section and breaks the byte comparison.
delta() {
  echo "--- delta: overlay/merge and append-contract suites"
  go test -count=1 ./internal/delta
  go test -count=1 -run 'TestDelta' ./internal/rib
  go test -count=1 -run 'TestDelta' ./internal/serve
  go test -count=1 -run 'TestAppend' .

  local tmp scale
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064 -- expand now: $tmp is a function local.
  trap "rm -rf '$tmp'" EXIT
  scale="${DELTA_SCALE:-512}"
  echo "--- delta: generating base and grown archives (scale $scale, seed 1)"
  go run ./cmd/synthgen -dir "$tmp/arch" -scale "$scale" -seed 1 >/dev/null
  # Same world, plus amplified churn: the deterministic encoder makes
  # every grown MRT file a byte-superset of its base counterpart —
  # exactly the append-only growth the delta path requires.
  go run ./cmd/synthgen -dir "$tmp/grown" -scale "$scale" -seed 1 -volume 1024 >/dev/null
  echo "--- delta: cold render of the grown archive (cache off)"
  go run ./cmd/dropscope -load "$tmp/grown" -index-cache off >"$tmp/cold.txt"
  echo "--- delta: seeding the snapshot on the base archive"
  go run ./cmd/dropscope -load "$tmp/arch" >/dev/null
  if [ ! -f "$tmp/arch/ribsnap/index.ribsnap" ]; then
    echo "delta: base snapshot was not written" >&2
    return 1
  fi
  local mode
  for mode in par serial strict sharded; do
    mkdir -p "$tmp/snap-$mode"
    cp "$tmp/arch/ribsnap/index.ribsnap" "$tmp/snap-$mode/"
  done
  echo "--- delta: append loads over the grown archive (parallel, serial, strict, sharded)"
  go run ./cmd/dropscope -load "$tmp/grown" -index-cache "$tmp/snap-par" -append >"$tmp/append.txt"
  go run ./cmd/dropscope -load "$tmp/grown" -index-cache "$tmp/snap-serial" -append -serial >"$tmp/append-serial.txt"
  go run ./cmd/dropscope -load "$tmp/grown" -index-cache "$tmp/snap-strict" -append -strict >"$tmp/append-strict.txt"
  go run ./cmd/dropscope -load "$tmp/grown" -index-cache "$tmp/snap-sharded" -append -shards 7 >"$tmp/append-sharded.txt"
  local f
  for f in append append-serial append-strict append-sharded; do
    if ! cmp -s "$tmp/cold.txt" "$tmp/$f.txt"; then
      echo "delta: $f render differs from the cold render of the grown archive" >&2
      return 1
    fi
  done
  echo "--- delta: all append renders byte-identical to the cold rebuild"
}

# deltaratio is the incremental-ingest performance gate. It first
# checks the committed append/cold ratio in BENCH_PR10.json (an append
# must cost at most DELTA_RATIO % — default 30 — of the cold rebuild it
# replaces), then re-measures BenchmarkIncrementalAppend live and holds
# the fresh ratio to the same bar. The live half self-skips on
# undersized runners (< 2 cores): a box saturated by the harness
# measures scheduler noise, not the decode saving.
deltaratio() {
  if [ ! -f BENCH_PR10.json ]; then
    echo "BENCH_PR10.json missing; nothing to gate against" >&2
    return 1
  fi
  awk -v tol="${DELTA_RATIO:-30}" '
    /"cold_ns_op"/ { c = $0; sub(/.*: */, "", c); sub(/[,}].*/, "", c) }
    /"append_ns_op"/ { a = $0; sub(/.*: */, "", a); sub(/[,}].*/, "", a) }
    END {
      if (c + 0 == 0 || a + 0 == 0) {
        print "deltaratio: cold_ns_op or append_ns_op missing from BENCH_PR10.json" > "/dev/stderr"
        exit 1
      }
      r = a / c * 100
      printf "append/cold committed ratio: %.1f%% ns/op (bar %d%%)\n", r, tol
      if (r > tol) {
        print "DELTA GATE FAIL: committed append cost exceeds the ratio bar" > "/dev/stderr"
        exit 1
      }
      print "DELTA GATE OK (committed)"
    }' BENCH_PR10.json
  local cores
  cores="$(nproc 2>/dev/null || echo 1)"
  if [ "$cores" -lt 2 ]; then
    echo "deltaratio: $cores core(s) < 2; live re-measure skipped"
    return 0
  fi
  go test -run '^$' -bench 'BenchmarkIncrementalAppend' \
    -benchtime "${DELTA_BENCHTIME:-3x}" -count "${DELTA_COUNT:-3}" . | tee delta-bench.txt
  awk -v tol="${DELTA_RATIO:-30}" '
    $1 ~ /IncrementalAppend\/cold/ && $4 == "ns/op" { c += $3; cn++ }
    $1 ~ /IncrementalAppend\/append/ && $4 == "ns/op" { a += $3; an++ }
    END {
      if (cn == 0 || an == 0) {
        print "deltaratio: benchmark output missing cold or append runs" > "/dev/stderr"
        exit 1
      }
      r = (a / an) / (c / cn) * 100
      printf "append/cold measured ratio: %.1f%% ns/op (bar %d%%)\n", r, tol
      if (r > tol) {
        print "DELTA GATE FAIL: measured append cost exceeds the ratio bar" > "/dev/stderr"
        exit 1
      }
      print "DELTA GATE OK (measured)"
    }' delta-bench.txt
}

# lint runs gofmt/vet plus staticcheck (correctness checks) and
# govulncheck when installed. CI installs both pinned; locally they are
# optional and skipped with a notice, never fetched implicitly.
lint() {
  fmt
  vet
  if command -v staticcheck >/dev/null 2>&1; then
    echo "--- lint: staticcheck"
    staticcheck -checks 'SA*' ./...
  else
    echo "--- lint: staticcheck not installed; skipping (CI installs it pinned)"
  fi
  if command -v govulncheck >/dev/null 2>&1; then
    echo "--- lint: govulncheck"
    govulncheck ./...
  else
    echo "--- lint: govulncheck not installed; skipping (CI installs it pinned)"
  fi
  if command -v shellcheck >/dev/null 2>&1; then
    echo "--- lint: shellcheck"
    shellcheck scripts/*.sh
  else
    echo "--- lint: shellcheck not installed; skipping (CI runners ship it)"
  fi
}

all() { build; vet; fmt; test_; race; bench; }

case "${1:-all}" in
  build) build ;;
  vet) vet ;;
  fmt) fmt ;;
  test) test_ ;;
  race) race ;;
  bench) bench ;;
  benchgate) benchgate ;;
  fuzz) fuzz ;;
  faults) faults ;;
  chaos) chaos ;;
  warmstart) warmstart ;;
  warmratio) warmratio ;;
  serve) serve ;;
  servegate) shift; servegate "${1:-}" ;;
  soak) soak ;;
  crash) crash ;;
  overload) overload ;;
  overloadgate) shift; overloadgate "${1:-}" ;;
  shard) shard ;;
  shardgate) shardgate ;;
  delta) delta ;;
  deltaratio) deltaratio ;;
  lint) lint ;;
  all) all ;;
  *)
    echo "usage: $0 [build|vet|fmt|test|race|bench|benchgate|fuzz|faults|chaos|warmstart|serve|soak|crash|overload|shard|shardgate|delta|deltaratio|lint|all]" >&2
    exit 2
    ;;
esac
