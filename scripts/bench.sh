#!/usr/bin/env bash
# bench.sh — measurement harness for the hot path. Runs the end-to-end
# benchmarks (BenchmarkPipelineNew, BenchmarkEndToEnd, BenchmarkWarmStart)
# with -benchmem, averages the runs, and gates CI on allocs/op against
# the committed BENCH_PR5.json.
#
# Usage:
#   scripts/bench.sh run                 # measure now; writes bench-raw.txt
#                                        # and bench-current.json (gitignored)
#   scripts/bench.sh compare OLD NEW     # two raw files: benchstat when
#                                        # installed, an awk delta table otherwise
#                                        # (e.g. a cold-only vs warm-enabled run)
#   scripts/bench.sh check               # CI gate: fresh allocs/op must be within
#                                        # BENCH_ALLOC_TOLERANCE % of the committed
#                                        # "after" numbers in the newest BENCH_PR*.json
#                                        # that carries per-benchmark entries
#
# Environment:
#   BENCH_COUNT            repetitions per benchmark (default 3)
#   BENCH_TIME             -benchtime per run (default 3x)
#   BENCH_ALLOC_TOLERANCE  allowed allocs/op regression percent (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='BenchmarkPipelineNew|BenchmarkEndToEnd|BenchmarkWarmStart|BenchmarkIncrementalAppend'
COUNT="${BENCH_COUNT:-3}"
TIME="${BENCH_TIME:-3x}"
TOL="${BENCH_ALLOC_TOLERANCE:-10}"

run_benches() {
  go test -run '^$' -bench "$BENCHES" -benchmem -benchtime "$TIME" -count "$COUNT" .
}

# find_baseline prints the newest committed BENCH_PR<N>.json (highest N)
# that carries per-benchmark "bench" entries — PR6/PR7 hold serving-load
# baselines without them and are skipped. Fails when none qualifies:
# gating silently against nothing is how regressions land.
find_baseline() {
  local f
  for f in $(ls BENCH_PR*.json 2>/dev/null |
    sed 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1 &/' | sort -rn | awk '{ print $2 }'); do
    if grep -q '"bench"' "$f"; then
      echo "$f"
      return 0
    fi
  done
  echo "bench.sh: no BENCH_PR*.json with \"bench\" entries found; nothing to gate against" >&2
  return 1
}

# summarize RAWFILE — one "name ns_op b_op allocs_op" line per
# benchmark, averaged over runs, GOMAXPROCS suffix stripped.
summarize() {
  awk '
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
      name = $1
      sub(/^Benchmark/, "", name)
      sub(/-[0-9]+$/, "", name)
      ns[name] += $3; b[name] += $5; al[name] += $7; n[name]++
    }
    END {
      for (k in n)
        printf "%s %.0f %.0f %.0f\n", k, ns[k]/n[k], b[k]/n[k], al[k]/n[k]
    }' "$1" | sort
}

# json_results SUMMARY — the flat one-object-per-line results block the
# check gate parses back with sed.
json_results() {
  local first=1
  while read -r name ns b al; do
    [ "$first" = 1 ] || printf ',\n'
    first=0
    printf '    { "bench": "%s", "ns_op": %s, "b_op": %s, "allocs_op": %s }' \
      "$name" "$ns" "$b" "$al"
  done <<<"$1"
  printf '\n'
}

run() {
  echo "== bench: $BENCHES (count=$COUNT, benchtime=$TIME)"
  run_benches | tee bench-raw.txt
  local summary
  summary="$(summarize bench-raw.txt)"
  {
    printf '{\n'
    printf '  "config": { "count": %s, "benchtime": "%s", "go": "%s" },\n' \
      "$COUNT" "$TIME" "$(go env GOVERSION)"
    printf '  "results": [\n'
    json_results "$summary"
    printf '  ]\n}\n'
  } >bench-current.json
  echo "== averages (ns/op, B/op, allocs/op)"
  echo "$summary" | awk '{ printf "%-28s %14s %14s %10s\n", $1, $2, $3, $4 }'
  echo "== wrote bench-raw.txt, bench-current.json"
}

compare() {
  local old="$1" new="$2"
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old" "$new"
    return
  fi
  # Fallback: join the two averaged summaries and print deltas. A
  # benchmark present in only one file has no delta to print — warn and
  # skip it instead of silently dropping it from the join (e.g. a
  # baseline recorded before a benchmark existed).
  echo "benchstat not installed; awk fallback (averages over $COUNT runs)"
  local so sn only
  so="$(summarize "$old")"
  sn="$(summarize "$new")"
  only="$(join -v 1 <(echo "$so") <(echo "$sn") | awk '{ print $1 " (old run only)" }'
          join -v 2 <(echo "$so") <(echo "$sn") | awk '{ print $1 " (new run only)" }')"
  if [ -n "$only" ]; then
    while read -r line; do
      echo "compare: skipping $line: missing from the other run" >&2
    done <<<"$only"
  fi
  join <(echo "$so") <(echo "$sn") | awk '
    BEGIN { printf "%-28s %14s %14s %8s  %12s %12s %8s\n",
            "benchmark", "old ns/op", "new ns/op", "delta",
            "old allocs", "new allocs", "delta" }
    {
      printf "%-28s %14.0f %14.0f %+7.1f%%  %12.0f %12.0f %+7.1f%%\n",
        $1, $2, $5, ($5-$2)/$2*100, $4, $7, ($7-$4)/$4*100
    }'
}

check() {
  local BASELINE
  BASELINE="$(find_baseline)"
  echo "== gate baseline: $BASELINE"
  run
  local fail=0 name committed
  while read -r line; do
    name=$(sed 's/.*"bench": *"\([^"]*\)".*/\1/' <<<"$line")
    committed=$(sed 's/.*"after": *{[^}]*"allocs_op": *\([0-9]*\).*/\1/' <<<"$line")
    measured=$(awk -v k="$name" '$1 == k { print $4 }' <(summarize bench-raw.txt))
    if [ -z "$measured" ]; then
      echo "GATE MISS  $name: not measured" >&2
      fail=1
      continue
    fi
    if awk -v m="$measured" -v c="$committed" -v tol="$TOL" \
        'BEGIN { exit !(m <= c * (1 + tol/100)) }'; then
      echo "GATE OK    $name: allocs/op $measured (committed $committed, +${TOL}% allowed)"
    else
      echo "GATE FAIL  $name: allocs/op $measured exceeds committed $committed by more than ${TOL}%" >&2
      fail=1
    fi
  done < <(grep '"bench"' "$BASELINE")
  exit "$fail"
}

case "${1:-run}" in
  run) run ;;
  compare) compare "$2" "$3" ;;
  check) check ;;
  *)
    echo "usage: $0 [run|compare OLD NEW|check]" >&2
    exit 2
    ;;
esac
