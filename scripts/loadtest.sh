#!/usr/bin/env bash
# loadtest.sh — the committed wrk-style load driver for the dropscoped
# serving layer. It generates the synthgen example archive, boots the
# daemon in -loadtest mode (its own loopback listener), drives the
# seeded deterministic request mix, and prints QPS and latency
# percentiles as JSON — the measurement committed as BENCH_PR6.json and
# gated by scripts/check.sh serve.
#
# Usage: scripts/loadtest.sh [--overload] [OUT.json]
#   SCALE=512 DURATION=5s CLIENTS=8 SEED=1 RING=4096 SWAPS=0 to override.
#
# --overload is the admission-gate measurement (BENCH_PR7.json): 4x the
# client concurrency against a small bounded gate (MAX_INFLIGHT=8,
# QUEUE=8, QUEUE_WAIT=2ms by default), with 503 responses counted as
# shed load. The JSON then reports shed/shed_rate, and p99_us reads "p99
# of admitted requests" — the number that must stay flat while the
# excess is shed. SERVICE_FLOOR (default 1ms) sets the simulated
# service time per admitted query: the synthetic archive's point
# queries answer in under a microsecond on loopback, which no realistic
# client count can saturate, so the floor stands in for the cost of a
# production query against a full-scale archive.
#
# The run is deterministic in its request sequence (seeded splitmix64
# over the archive's own prefix universe); timings of course are not.
set -euo pipefail
cd "$(dirname "$0")/.."

overload=""
if [ "${1:-}" = "--overload" ]; then
  overload=1
  shift
fi

out="${1:-/dev/stdout}"
scale="${SCALE:-512}"
duration="${DURATION:-5s}"
seed="${SEED:-1}"
ring="${RING:-4096}"
swaps="${SWAPS:-0}"
if [ -n "$overload" ]; then
  clients="${CLIENTS:-32}"
else
  clients="${CLIENTS:-8}"
fi

tmp="$(mktemp -d)"
# shellcheck disable=SC2064 -- expand now: $tmp is a script local.
trap "rm -rf '$tmp'" EXIT

echo "--- loadtest: generating archive (scale $scale, seed $seed)" >&2
go run ./cmd/synthgen -dir "$tmp/arch" -scale "$scale" -seed "$seed" >&2

extra=()
if [ -n "$overload" ]; then
  extra=(-overload
    -max-inflight "${MAX_INFLIGHT:-8}"
    -queue "${QUEUE:-8}"
    -queue-wait "${QUEUE_WAIT:-2ms}"
    -service-floor "${SERVICE_FLOOR:-1ms}")
  echo "--- loadtest: OVERLOAD $clients clients vs ${MAX_INFLIGHT:-8} slots for $duration (ring $ring, swaps $swaps)" >&2
else
  echo "--- loadtest: $clients clients for $duration (ring $ring, swaps $swaps)" >&2
fi

go run ./cmd/dropscoped -archive "$tmp/arch" -loadtest \
  -clients "$clients" -duration "$duration" -seed "$seed" \
  -ring "$ring" -swaps "$swaps" ${extra[@]+"${extra[@]}"} >"$out"
