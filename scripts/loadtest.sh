#!/usr/bin/env bash
# loadtest.sh — the committed wrk-style load driver for the dropscoped
# serving layer. It generates the synthgen example archive, boots the
# daemon in -loadtest mode (its own loopback listener), drives the
# seeded deterministic request mix, and prints QPS and latency
# percentiles as JSON — the measurement committed as BENCH_PR6.json and
# gated by scripts/check.sh serve.
#
# Usage: scripts/loadtest.sh [OUT.json]
#   SCALE=512 DURATION=5s CLIENTS=8 SEED=1 RING=4096 SWAPS=0 to override.
#
# The run is deterministic in its request sequence (seeded splitmix64
# over the archive's own prefix universe); timings of course are not.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-/dev/stdout}"
scale="${SCALE:-512}"
duration="${DURATION:-5s}"
clients="${CLIENTS:-8}"
seed="${SEED:-1}"
ring="${RING:-4096}"
swaps="${SWAPS:-0}"

tmp="$(mktemp -d)"
# shellcheck disable=SC2064 -- expand now: $tmp is a script local.
trap "rm -rf '$tmp'" EXIT

echo "--- loadtest: generating archive (scale $scale, seed $seed)" >&2
go run ./cmd/synthgen -dir "$tmp/arch" -scale "$scale" -seed "$seed" >&2

echo "--- loadtest: $clients clients for $duration (ring $ring, swaps $swaps)" >&2
go run ./cmd/dropscoped -archive "$tmp/arch" -loadtest \
  -clients "$clients" -duration "$duration" -seed "$seed" \
  -ring "$ring" -swaps "$swaps" >"$out"
