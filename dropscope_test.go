package dropscope

import (
	"encoding/json"
	"strings"
	"testing"
)

// The facade test uses a reduced background scale to stay fast; the full
// default world is exercised in internal/analysis.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 512
	return cfg
}

var cachedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if cachedStudy == nil {
		s, err := NewStudy(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedStudy = s
	}
	return cachedStudy
}

func TestStudyResults(t *testing.T) {
	s := study(t)
	r := s.Results()
	if r.Fig1.TotalPrefixes != 712 {
		t.Errorf("total prefixes = %d", r.Fig1.TotalPrefixes)
	}
	if len(r.Fig2.FilteringPeers) != 3 {
		t.Errorf("filtering peers = %d", len(r.Fig2.FilteringPeers))
	}
	if len(r.Fig7) == 0 {
		t.Error("no Fig7 samples")
	}
}

func TestRenderProducesEverySection(t *testing.T) {
	s := study(t)
	var b strings.Builder
	if err := s.Results().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Table 1", "Section 5", "Figure 3",
		"Figure 4", "Figure 5", "Figure 6", "Figure 7", "Table 2",
		"RPKI-VALID HIJACK", "132.255.0.0/22",
		"path-end validation", "serial-hijacker", "MOAS conflicts",
		"maxLength audit", "universal ROV",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("render output suspiciously short: %d bytes", len(out))
	}
}

func TestWriteAndLoadStudy(t *testing.T) {
	s := study(t)
	dir := t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStudy(dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.World != nil {
		t.Error("loaded study should have no generated world")
	}
	if err := loaded.WriteArchives(t.TempDir()); err == nil {
		t.Error("WriteArchives without world should fail")
	}
	a := s.Results()
	b := loaded.Results()
	if a.Fig1.TotalPrefixes != b.Fig1.TotalPrefixes || a.Fig1.WithRecord != b.Fig1.WithRecord {
		t.Errorf("reloaded study differs: %+v vs %+v", a.Fig1, b.Fig1)
	}
	if a.Sec5.WithHijackerASNObject != b.Sec5.WithHijackerASNObject {
		t.Errorf("Sec5 differs after reload")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s := study(t)
	sum := s.Results().Summary()
	if sum.TotalListings != 712 || sum.FilteringPeers != 3 || !sum.RPKIValidHijack {
		t.Errorf("summary = %+v", sum)
	}
	if sum.CasePrefix != "132.255.0.0/22" {
		t.Errorf("case prefix = %q", sum.CasePrefix)
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalListings != sum.TotalListings || back.SignRateRemoved != sum.SignRateRemoved {
		t.Error("JSON round trip lost fields")
	}
	if back.CategoryCounts["Hijacked"] != 179 {
		t.Errorf("category counts = %v", back.CategoryCounts)
	}
}
