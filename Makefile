# Convenience wrappers over scripts/check.sh — the same commands CI runs
# (.github/workflows/ci.yml), so a green `make all` locally means a green
# gate.
.PHONY: all build vet fmt test race bench benchgate fuzz faults chaos warmstart serve soak crash overload shard shardgate delta deltaratio lint loadtest

all:
	scripts/check.sh all

build:
	scripts/check.sh build

vet:
	scripts/check.sh vet

fmt:
	scripts/check.sh fmt

test:
	scripts/check.sh test

race:
	scripts/check.sh race

bench:
	scripts/check.sh bench

benchgate:
	scripts/check.sh benchgate

fuzz:
	scripts/check.sh fuzz

faults:
	scripts/check.sh faults

chaos:
	scripts/check.sh chaos

warmstart:
	scripts/check.sh warmstart

serve:
	scripts/check.sh serve

soak:
	scripts/check.sh soak

crash:
	scripts/check.sh crash

overload:
	scripts/check.sh overload

shard:
	scripts/check.sh shard

shardgate:
	scripts/check.sh shardgate

delta:
	scripts/check.sh delta

deltaratio:
	scripts/check.sh deltaratio

lint:
	scripts/check.sh lint

loadtest:
	scripts/loadtest.sh
