package dropscope

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dropscope/internal/ingest"
)

// writeArchivesWithSnapshot persists the cached study's archives, runs
// one cold cached load to seed the snapshot, and returns the archive and
// snapshot directories.
func writeArchivesWithSnapshot(t *testing.T) (dir, snapDir string) {
	t.Helper()
	s := study(t)
	dir = t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	snapDir = filepath.Join(dir, "ribsnap")
	first, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	if first.snap != nil {
		t.Fatal("first cached load must be cold")
	}
	if _, err := os.Stat(filepath.Join(snapDir, snapshotFile)); err != nil {
		t.Fatalf("cold load did not write snapshot: %v", err)
	}
	return dir, snapDir
}

func renderStudy(t *testing.T, s *Study, serial bool) string {
	t.Helper()
	var b strings.Builder
	var r Results
	if serial {
		r = s.ResultsSerial()
	} else {
		r = s.Results()
	}
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWarmStartByteIdentical is the headline warm-start contract: a
// study served from the snapshot renders byte-for-byte what a cold
// build renders, in lenient and strict mode, under parallel and serial
// experiment scheduling.
func TestWarmStartByteIdentical(t *testing.T) {
	dir, snapDir := writeArchivesWithSnapshot(t)

	coldLenient, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refParallel := renderStudy(t, coldLenient, false)
	refSerial := renderStudy(t, coldLenient, true)
	coldStrict, err := LoadStudy(dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	refStrict := renderStudy(t, coldStrict, false)

	warm, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.snap == nil {
		t.Fatal("expected a warm start from the snapshot")
	}
	if got := renderStudy(t, warm, false); got != refParallel {
		t.Error("warm parallel render differs from cold")
	}
	if got := renderStudy(t, warm, true); got != refSerial {
		t.Error("warm serial render differs from cold")
	}
	if refParallel != refSerial {
		t.Error("parallel and serial renders differ")
	}

	warmStrict, err := LoadStudyWithOptions(dir, smallConfig(),
		IngestOptions{Strict: true, SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warmStrict.Close()
	if warmStrict.snap == nil {
		t.Fatal("expected a strict warm start")
	}
	if got := renderStudy(t, warmStrict, false); got != refStrict {
		t.Error("strict warm render differs from strict cold")
	}

	// Workers must not matter on the warm path (no RIB loading happens).
	warmSerial, err := LoadStudyWithOptions(dir, smallConfig(),
		IngestOptions{Workers: 1, SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warmSerial.Close()
	if got := renderStudy(t, warmSerial, true); got != refSerial {
		t.Error("workers=1 warm render differs from cold serial")
	}
}

// snapshotSkip returns the snapshot source's skip counters from a
// rendered health report, and whether the source appeared at all.
func snapshotSkip(r Results) (ingest.Counters, bool) {
	for _, src := range r.Health.Sources {
		if src.Name == snapshotSource {
			return src.Skips, true
		}
	}
	return ingest.Counters{}, false
}

// TestWarmStartDamagedSnapshotFallsBack flips one byte of the snapshot:
// the load must silently degrade to a cold build (never wrong results),
// count the discarded snapshot in the health report, and rewrite a good
// snapshot for the next run.
func TestWarmStartDamagedSnapshotFallsBack(t *testing.T) {
	dir, snapDir := writeArchivesWithSnapshot(t)
	path := filepath.Join(snapDir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	if st.snap != nil {
		t.Fatal("damaged snapshot must not warm-start")
	}
	r := st.Results()
	skips, ok := snapshotSkip(r)
	if !ok {
		t.Fatal("discarded snapshot missing from health report")
	}
	if skips.Total() != 1 {
		t.Errorf("snapshot skips = %d, want 1", skips.Total())
	}

	// The cold rebuild must have replaced the damaged file.
	again, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.snap == nil {
		t.Fatal("snapshot was not rewritten after the damaged one was discarded")
	}
}

// TestWarmStartTruncatedSnapshotFallsBack is the same contract under
// truncation, checking the skip lands on the Truncated counter.
func TestWarmStartTruncatedSnapshotFallsBack(t *testing.T) {
	dir, snapDir := writeArchivesWithSnapshot(t)
	path := filepath.Join(snapDir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:32], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.snap != nil {
		t.Fatal("truncated snapshot must not warm-start")
	}
	skips, ok := snapshotSkip(st.Results())
	if !ok {
		t.Fatal("discarded snapshot missing from health report")
	}
	if skips[ingest.Truncated] != 1 {
		t.Errorf("truncated counter = %d, want 1", skips[ingest.Truncated])
	}
}

// TestWarmStartStaleDigestRebuilds changes the archive under the
// snapshot (an extra collector file) and checks the stale snapshot is
// discarded, the study is rebuilt cold over the new archive, and the
// snapshot is rewritten for the new digest.
func TestWarmStartStaleDigestRebuilds(t *testing.T) {
	dir, snapDir := writeArchivesWithSnapshot(t)

	entries, err := os.ReadDir(filepath.Join(dir, "mrt"))
	if err != nil {
		t.Fatal(err)
	}
	var donor string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mrt") {
			donor = e.Name()
			break
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "mrt", donor))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mrt", "zzstale.mrt"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	if st.snap != nil {
		t.Fatal("stale snapshot must not warm-start")
	}
	skips, ok := snapshotSkip(st.Results())
	if !ok {
		t.Fatal("stale snapshot missing from health report")
	}
	if skips[ingest.Unsupported] != 1 {
		t.Errorf("unsupported counter = %d, want 1", skips[ingest.Unsupported])
	}

	// Rewritten under the new digest: the next load is warm and renders
	// what a cache-less cold load over the modified archive renders.
	warm, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.snap == nil {
		t.Fatal("snapshot was not rewritten for the new digest")
	}
	cold, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if renderStudy(t, warm, false) != renderStudy(t, cold, false) {
		t.Error("warm render over modified archive differs from cold")
	}
}

// TestWarmStartWindowMismatchRebuilds: a snapshot built for one analysis
// window must not serve a different one.
func TestWarmStartWindowMismatchRebuilds(t *testing.T) {
	dir, snapDir := writeArchivesWithSnapshot(t)
	cfg := smallConfig()
	cfg.Window.Last--
	st, err := LoadStudyWithOptions(dir, cfg, IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.snap != nil {
		t.Fatal("window-mismatched snapshot must not warm-start")
	}
	skips, ok := snapshotSkip(st.Results())
	if !ok {
		t.Fatal("window-mismatched snapshot missing from health report")
	}
	if skips[ingest.Unsupported] != 1 {
		t.Errorf("unsupported counter = %d, want 1", skips[ingest.Unsupported])
	}
}
