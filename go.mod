module dropscope

go 1.24
