package dropscope

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dropscope/internal/ingest/faultinject"
)

// writeDamagedArchives persists the cached study's archives and then
// deterministically damages the MRT streams of the first `damaged`
// collectors (in sorted name order) with the fault-injection harness.
// It returns the archive dir and the health-source names of the damaged
// collectors.
func writeDamagedArchives(t *testing.T, damaged int) (string, []string) {
	t.Helper()
	s := study(t)
	dir := t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "mrt"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mrt") {
			names = append(names, strings.TrimSuffix(e.Name(), ".mrt"))
		}
	}
	sort.Strings(names)
	if len(names) <= damaged {
		t.Fatalf("world has %d collectors, cannot damage %d and keep survivors", len(names), damaged)
	}
	var srcs []string
	for i := 0; i < damaged; i++ {
		path := filepath.Join(dir, "mrt", names[i]+".mrt")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out := faultinject.New(uint64(1000 + i)).DamageMRT(raw)
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, "mrt/"+names[i])
	}
	return dir, srcs
}

// TestLenientRunQuarantinesDamagedCollectors is the headline acceptance
// scenario: with 2 of the collectors' MRT streams corrupted, the lenient
// pipeline completes, quarantines exactly those collectors, and the
// rendered report carries a data-health section with their skip counts.
func TestLenientRunQuarantinesDamagedCollectors(t *testing.T) {
	dir, damaged := writeDamagedArchives(t, 2)
	loaded, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{MaxSkip: 1})
	if err != nil {
		t.Fatalf("lenient load over damaged archives failed: %v", err)
	}
	r := loaded.Results()

	if r.Health.Clean() {
		t.Fatal("damaged run reported clean health")
	}
	if got := r.Health.Quarantined; len(got) != len(damaged) ||
		got[0] != damaged[0] || got[1] != damaged[1] {
		t.Fatalf("quarantined = %v, want exactly %v", got, damaged)
	}
	for _, src := range r.Health.Sources {
		isDamaged := src.Name == damaged[0] || src.Name == damaged[1]
		if isDamaged && src.Skips.Total() == 0 {
			t.Errorf("damaged source %s has no skip counts", src.Name)
		}
		if !isDamaged && (src.Skips.Total() != 0 || src.Quarantined) {
			t.Errorf("undamaged source %s reported damage: %+v", src.Name, src)
		}
	}

	out := renderBytes(t, r)
	if !bytes.Contains(out, []byte("Data health")) {
		t.Error("render lacks the data-health section")
	}
	for _, name := range damaged {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("data-health section does not name %s", name)
		}
	}
	if !bytes.Contains(out, []byte("QUARANTINED")) {
		t.Error("data-health section does not mark the quarantine")
	}

	sum := r.Summary()
	if sum.DataHealth == nil {
		t.Fatal("summary of damaged run has no data_health")
	}
	if len(sum.DataHealth.Quarantined) != 2 || sum.DataHealth.TotalSkipped == 0 {
		t.Errorf("data_health = %+v", sum.DataHealth)
	}
}

// TestStrictRunOverDamagedArchivesFails pins the strict contract: the
// same damaged dataset refuses to load, and the error names the failing
// record's index and byte offset.
func TestStrictRunOverDamagedArchivesFails(t *testing.T) {
	dir, _ := writeDamagedArchives(t, 2)
	_, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{Strict: true})
	if err == nil {
		t.Fatal("strict load over damaged archives succeeded")
	}
	if !regexp.MustCompile(`record \d+ at offset 0x[0-9a-f]+`).MatchString(err.Error()) {
		t.Errorf("strict error %q lacks record index and byte offset", err)
	}
}

// TestLenientCleanArchivesByteIdenticalToStrict is the compatibility
// anchor: over undamaged archives the lenient path must render — and
// summarize — exactly what the strict path does.
func TestLenientCleanArchivesByteIdenticalToStrict(t *testing.T) {
	s := study(t)
	dir := t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	strict, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr, lr := strict.Results(), lenient.Results()
	if !lr.Health.Clean() {
		t.Errorf("lenient run over clean archives is not clean: %+v", lr.Health)
	}
	if a, b := renderBytes(t, sr), renderBytes(t, lr); !bytes.Equal(a, b) {
		t.Errorf("lenient render over clean archives diverged from strict (%d vs %d bytes)", len(b), len(a))
	}
	if lr.Summary().DataHealth != nil {
		t.Error("clean run summary grew a data_health section")
	}
}

// TestLenientCountsDamagedTextLines drives a non-MRT source through the
// quarantine accounting: a malformed DROP line must be skipped, counted
// against its snapshot file, and must not quarantine anything.
func TestLenientCountsDamagedTextLines(t *testing.T) {
	s := study(t)
	dir := t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "drop"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no drop snapshots: %v", err)
	}
	name := entries[0].Name()
	path := filepath.Join(dir, "drop", name)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("this-is-not-a-prefix ; SBL000000\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatalf("lenient load failed on a single bad text line: %v", err)
	}
	r := loaded.Results()
	if r.Health.Clean() {
		t.Fatal("bad text line left health clean")
	}
	if len(r.Health.Quarantined) != 0 {
		t.Errorf("one bad line quarantined %v", r.Health.Quarantined)
	}
	found := false
	for _, src := range r.Health.Sources {
		if src.Name == "drop/"+name {
			found = src.Skips.Total() == 1
		}
	}
	if !found {
		t.Errorf("drop/%s did not record exactly one skip", name)
	}
}
