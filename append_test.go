package dropscope

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// growableArchive generates a private world (never the shared cached
// study — amplification mutates the world in place), writes its
// archives, and seeds the snapshot with one cold cached load.
func growableArchive(t *testing.T) (s *Study, dir, snapDir string) {
	t.Helper()
	cfg := smallConfig()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	snapDir = filepath.Join(dir, "ribsnap")
	first, err := LoadStudyWithOptions(dir, cfg, IngestOptions{SnapshotDir: snapDir, Append: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.snap != nil {
		t.Fatal("first cached load must be cold")
	}
	return s, dir, snapDir
}

// copySnapshot clones the seeded snapshot into a fresh directory, so
// each mode of the append test starts from the same stale base.
func copySnapshot(t *testing.T, snapDir string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(snapDir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	clone := t.TempDir()
	if err := os.WriteFile(filepath.Join(clone, snapshotFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return clone
}

// loadAppend runs an append-enabled load and asserts it actually took
// the delta path: the returned study is snapshot-backed even though the
// snapshot on disk was stale, which a plain warm start cannot be.
func loadAppend(t *testing.T, dir string, opts IngestOptions) *Study {
	t.Helper()
	opts.Append = true
	st, err := LoadStudyWithOptions(dir, smallConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.snap == nil {
		t.Fatal("append-enabled load over a grown archive did not take the delta path")
	}
	return st
}

// TestAppendByteIdentical is the headline incremental-ingest contract:
// after the archives grow append-only, a load that merges only the
// appended bytes onto the stale snapshot renders byte-for-byte what a
// cold rebuild of the grown archive renders — in lenient and strict
// mode, under parallel and serial experiment scheduling, and served
// from a sharded index.
func TestAppendByteIdentical(t *testing.T) {
	s, dir, snapDir := growableArchive(t)
	strictSnap := copySnapshot(t, snapDir)
	shardSnap := copySnapshot(t, snapDir)

	if records, _ := s.AmplifyVolume(8, 401); records == 0 {
		t.Fatal("AmplifyVolume appended nothing")
	}
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}

	cold, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refParallel := renderStudy(t, cold, false)
	refSerial := renderStudy(t, cold, true)
	coldStrict, err := LoadStudy(dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	refStrict := renderStudy(t, coldStrict, false)

	merged := loadAppend(t, dir, IngestOptions{SnapshotDir: snapDir})
	defer merged.Close()
	r := merged.Results()
	if _, counted := snapshotSkip(r); counted {
		t.Error("delta load counted a snapshot skip; its health must match a cache-off cold run")
	}
	if got := renderStudy(t, merged, false); got != refParallel {
		t.Error("append parallel render differs from cold rebuild")
	}
	if got := renderStudy(t, merged, true); got != refSerial {
		t.Error("append serial render differs from cold rebuild")
	}

	mergedStrict := loadAppend(t, dir, IngestOptions{Strict: true, SnapshotDir: strictSnap})
	defer mergedStrict.Close()
	if got := renderStudy(t, mergedStrict, false); got != refStrict {
		t.Error("strict append render differs from strict cold rebuild")
	}

	sharded := loadAppend(t, dir, IngestOptions{SnapshotDir: shardSnap, Shards: 4, Workers: 1})
	defer sharded.Close()
	if got := renderStudy(t, sharded, true); got != refSerial {
		t.Error("sharded append render differs from cold rebuild")
	}

	// The merged snapshot replaced the stale one: the next load is a
	// plain warm start under the grown archive's digest.
	again, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.snap == nil {
		t.Fatal("merged snapshot was not persisted under the grown archive's digest")
	}
	if got := renderStudy(t, again, false); got != refParallel {
		t.Error("warm start from the merged snapshot differs from cold rebuild")
	}
}

// TestAppendFallsBackOnRewrite pins the safety property at the facade:
// when a byte the snapshot already consumed was rewritten, the append
// path must refuse, count the stale snapshot, and rebuild cold — with
// a correct report.
func TestAppendFallsBackOnRewrite(t *testing.T) {
	s, dir, snapDir := growableArchive(t)
	if records, _ := s.AmplifyVolume(8, 402); records == 0 {
		t.Fatal("AmplifyVolume appended nothing")
	}
	if err := s.WriteArchives(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "mrt"))
	if err != nil {
		t.Fatal(err)
	}
	var mrtFile string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mrt") {
			mrtFile = filepath.Join(dir, "mrt", e.Name())
			break
		}
	}
	raw, err := os.ReadFile(mrtFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0x01 // timestamp byte: record stays decodable, bytes differ
	if err := os.WriteFile(mrtFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadStudyWithOptions(dir, smallConfig(),
		IngestOptions{SnapshotDir: snapDir, Append: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.snap != nil {
		t.Fatal("rewritten archive still took the delta path")
	}
	skips, ok := snapshotSkip(st.Results())
	if !ok {
		t.Fatal("discarded snapshot missing from health report")
	}
	if skips.Total() != 1 {
		t.Errorf("snapshot skips = %d, want 1", skips.Total())
	}

	// The cold rebuild rewrote the snapshot: the next load warm-starts
	// with clean health and renders what a cache-off cold load renders.
	again, err := LoadStudyWithOptions(dir, smallConfig(),
		IngestOptions{SnapshotDir: snapDir, Append: true})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.snap == nil {
		t.Fatal("snapshot was not rewritten after the fallback rebuild")
	}
	cold, err := LoadStudyWithOptions(dir, smallConfig(), IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if renderStudy(t, again, false) != renderStudy(t, cold, false) {
		t.Error("post-fallback warm render differs from cold")
	}
}
