// Rovrouter demonstrates the full ROV deployment loop the paper's
// conclusions depend on: a validator serves the synthetic world's ROAs
// over RPKI-to-Router (RFC 8210), a router syncs the VRPs, and the
// router validates the case-study announcements — showing that the
// RPKI-valid hijack of 132.255.0.0/22 sails through, while an AS0 ROA
// would have stopped it.
package main

import (
	"fmt"
	"net"
	"os"

	"dropscope"
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rpki"
	"dropscope/internal/rtr"
)

func main() {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = 512
	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fail(err)
	}
	ds := study.Pipeline.Dataset()
	day := cfg.Window.Last

	// Validator side: snapshot VRPs and serve them over RTR on loopback.
	vrps := rtr.SnapshotVRPs(ds.RPKI, day, rpki.DefaultTALs)
	srv := rtr.NewServer(1, vrps)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	fmt.Printf("validator serving %d VRPs on %s\n", len(vrps), ln.Addr())

	// Router side: sync and validate.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		fail(err)
	}
	defer conn.Close()
	router := rtr.NewClient(conn)
	if err := router.Reset(); err != nil {
		fail(err)
	}
	fmt.Printf("router synced %d VRPs, serial %d\n\n", len(router.VRPs), router.Serial)

	casePrefix := netx.MustParsePrefix("132.255.0.0/22")
	owner := bgp.ASN(263692)
	attacker := bgp.ASN(50509)

	check := func(label string, q rtr.VRPQuery) {
		fmt.Printf("%-52s -> %s\n", label, router.Validate(q))
	}
	check("owner announcement (AS263692)", rtr.VRPQuery{Prefix: casePrefix, Origin: owner})
	check("hijack with forged owner origin (via AS50509)", rtr.VRPQuery{Prefix: casePrefix, Origin: owner})
	check("hijack announcing its own ASN", rtr.VRPQuery{Prefix: casePrefix, Origin: attacker})

	fmt.Println("\nthe forged-origin hijack validates identically to the owner —")
	fmt.Println("origin validation cannot tell them apart (§6.1). Now remediate with AS0:")

	// The owner replaces the ROA with AS0 (the §6.2.1 remediation) and the
	// validator pushes an update.
	remediated := append([]rtr.VRP{}, vrps...)
	for i, v := range remediated {
		if v.Prefix == casePrefix {
			remediated[i].ASN = bgp.AS0
			remediated[i].MaxLength = 32
		}
	}
	srv.Update(remediated)
	if err := router.Poll(); err != nil {
		fail(err)
	}
	fmt.Printf("\nrouter re-synced, serial %d\n", router.Serial)
	check("hijack with forged owner origin, after AS0", rtr.VRPQuery{Prefix: casePrefix, Origin: owner})
	check("any announcement of the covered space", rtr.VRPQuery{Prefix: netx.MustParsePrefix("132.255.1.0/24"), Origin: attacker})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
