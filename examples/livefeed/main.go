// Livefeed wires the live BGP-4 speaker to the measurement stack: a
// "hijacker" speaker establishes a real BGP session over TCP with a
// collector, announces the case-study prefix with a forged origin, and
// the collector feeds what it hears into the same RIB index and RPKI
// validation the paper's pipeline uses — the archived-data analysis and
// the live feed agree.
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"dropscope/internal/bgp"
	"dropscope/internal/bgpd"
	"dropscope/internal/mrt"
	"dropscope/internal/netx"
	"dropscope/internal/rib"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	today := timex.MustParseDay("2022-03-30")
	prefix := netx.MustParsePrefix("132.255.0.0/22")
	owner := bgp.ASN(263692)
	hijacker := bgp.ASN(50509)

	// The victim's ROA, as the validator would load it.
	var roas rpki.Archive
	if err := roas.Add(today-400, rpki.ROA{Prefix: prefix, MaxLength: 22, ASN: owner, TA: rpki.TALACNIC}); err != nil {
		return err
	}

	// Collector side: accept one BGP session and record updates.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	type heard struct {
		update *bgp.Update
		peerAS bgp.ASN
	}
	heardCh := make(chan heard, 4)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sess, err := bgpd.Establish(conn, bgpd.Config{
			LocalAS: 6447, RouterID: netx.AddrFrom4(128, 223, 51, 1),
		})
		if err != nil {
			return
		}
		defer sess.Close()
		for {
			u, err := sess.Recv()
			if err != nil {
				close(heardCh)
				return
			}
			heardCh <- heard{u, sess.PeerAS}
		}
	}()

	// Hijacker side: real TCP, real OPEN handshake, forged-origin UPDATE.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		LocalAS: hijacker, RouterID: netx.AddrFrom4(203, 0, 113, 66),
		HoldTime: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("hijacker session established with collector AS%d\n", 6447)

	if err := sess.SendUpdate(&bgp.Update{
		Attrs: bgp.Attrs{
			Origin:     bgp.OriginIGP,
			Path:       bgp.Sequence(hijacker, owner), // forged origin
			NextHop:    netx.AddrFrom4(203, 0, 113, 66),
			HasNextHop: true,
		},
		NLRI: []netx.Prefix{prefix},
	}); err != nil {
		return err
	}

	h := <-heardCh
	sess.Close()

	// Feed the live update into the same RIB index the archives feed.
	ix := rib.NewIndex()
	err = ix.Load("live", []mrt.Record{
		&mrt.PeerIndexTable{When: today.Time(), Peers: []mrt.Peer{
			{Addr: netx.AddrFrom4(203, 0, 113, 66), AS: h.peerAS},
		}},
		&mrt.BGP4MPMessage{
			When: today.Time(), PeerAS: h.peerAS,
			PeerAddr: netx.AddrFrom4(203, 0, 113, 66), LocalAS: 6447,
			Update: h.update,
		},
	})
	if err != nil {
		return err
	}
	ix.Close(today + 1)

	origin, _ := ix.OriginAt(prefix, today)
	path, _ := ix.PathAt(prefix, today)
	fmt.Printf("collector RIB: %s origin %s path %s\n", prefix, origin, path)
	fmt.Printf("RPKI validation of the announcement: %s\n",
		roas.ValidateAt(prefix, origin, today, rpki.DefaultTALs))
	fmt.Println("the live forged-origin announcement is RPKI-valid — identical to the")
	fmt.Println("archived case study the pipeline detects (Figure 4).")
	return nil
}
