// Quickstart: generate the paper-calibrated world, run the full analysis
// pipeline, and print every table and figure.
package main

import (
	"fmt"
	"os"

	"dropscope"
)

func main() {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = 256 // small world for a fast first run; use 64 for the paper-scale default

	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := study.Results().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
