// As0audit quantifies the AS0 attack surface the paper's §6.2 argues
// about: allocated-but-unrouted space whose ROAs authorize a routable ASN
// (hijackable), unrouted unsigned space (also hijackable), and squatted
// free-pool space the RIR AS0 TALs would reject if operators honored
// them.
package main

import (
	"fmt"
	"os"

	"dropscope"
	"dropscope/internal/bgp"
	"dropscope/internal/netx"
	"dropscope/internal/rirstats"
	"dropscope/internal/rpki"
)

func main() {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = 256
	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := study.Pipeline
	ds := p.Dataset()
	end := cfg.Window.Last
	routed := p.Index.RoutedSpace(end, 1)

	var hijackableSigned, hijackableUnsigned uint64
	for _, roa := range ds.RPKI.LiveAt(end, rpki.DefaultTALs) {
		if roa.ASN == bgp.AS0 || routed.Overlaps(roa.Prefix) {
			continue
		}
		hijackableSigned += roa.Prefix.NumAddrs()
		fmt.Printf("signed+unrouted %-20s ROA %-9s -> forgeable origin\n", roa.Prefix, roa.ASN)
	}
	for _, rec := range ds.RIR.RecordsAt(end) {
		if rec.Status != rirstats.Allocated && rec.Status != rirstats.Assigned {
			continue
		}
		for _, blk := range rec.Prefixes() {
			if routed.Overlaps(blk) || ds.RPKI.SignedAt(blk, end) {
				continue
			}
			hijackableUnsigned += blk.NumAddrs()
		}
	}

	// Squats the AS0 TALs would reject.
	as0TALs := []rpki.TrustAnchor{rpki.TAAPNICAS0, rpki.TALACNICAS0}
	rejected := 0
	for _, pfx := range p.Index.Prefixes() {
		if !p.Index.Observed(pfx, end) {
			continue
		}
		origin, ok := p.Index.OriginAt(pfx, end)
		if !ok {
			continue
		}
		if ds.RPKI.ValidateAt(pfx, origin, end, as0TALs) == rpki.Invalid {
			rejected++
			fmt.Printf("AS0-rejectable   %-20s origin %s (still routed)\n", pfx, origin)
		}
	}

	fmt.Println()
	fmt.Printf("attack surface at %s:\n", end)
	fmt.Printf("  signed, unrouted, non-AS0 ROA: %.4f /8 equivalents\n", netx.SlashEquivalents(hijackableSigned, 8))
	fmt.Printf("  allocated, unrouted, unsigned: %.4f /8 equivalents\n", netx.SlashEquivalents(hijackableUnsigned, 8))
	fmt.Printf("  routed squats the AS0 TALs would reject: %d prefixes\n", rejected)
	fmt.Println("remediation: sign unrouted space with AS0 ROAs; validators should honor RIR AS0 TALs")
}
