// Hijackhunt walks the reassembled RouteViews RIBs looking for
// forged-origin hijacks of RPKI-signed prefixes: announcements that are
// RPKI-valid yet route through a transit the prefix never used before —
// the pattern behind the paper's 132.255.0.0/22 case study (§6.1).
//
// It uses only the public Study API plus the pipeline's RIB index, the
// same interface a downstream operator would script against.
package main

import (
	"fmt"
	"os"

	"dropscope"
	"dropscope/internal/rpki"
	"dropscope/internal/timex"
)

func main() {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = 256
	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := study.Pipeline
	ds := p.Dataset()
	end := cfg.Window.Last

	fmt.Println("scanning for RPKI-valid origin changes with new transits...")
	suspects := 0
	for _, pfx := range p.Index.Prefixes() {
		spans := p.Index.OriginTimeline(pfx)
		if len(spans) < 2 {
			continue
		}
		// Same origin reappearing after a gap, through a different
		// transit, while a ROA authorizes that origin: textbook
		// forged-origin hijack of an unrouted signed prefix.
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if cur.Origin != prev.Origin || cur.Transit == prev.Transit {
				continue
			}
			gap := cur.From - prev.To
			if gap < 90 {
				continue // ordinary rehoming, not a resurrection
			}
			v := ds.RPKI.ValidateAt(pfx, cur.Origin, cur.From, rpki.DefaultTALs)
			if v != rpki.Valid {
				continue
			}
			suspects++
			fmt.Printf("\n%s\n", pfx)
			fmt.Printf("  dormant %d days, then re-originated by %s via new transit %s on %s\n",
				gap, cur.Origin, cur.Transit, cur.From)
			fmt.Printf("  announcement is RPKI-VALID (ROA permits %s)\n", cur.Origin)
			if still := p.Index.Observed(pfx, end); still {
				fmt.Printf("  still announced at window end (%s)\n", timex.Day(end))
			}
		}
	}
	fmt.Printf("\n%d suspect resurrection(s) found\n", suspects)
	if suspects == 0 {
		os.Exit(1)
	}
}
