// Rpkiuptake reproduces the paper's Table-1 question interactively:
// does being blocklisted (and remediating) correlate with RPKI adoption?
// It prints per-RIR signing rates for the three populations and the §4.2
// signing-ASN breakdown.
package main

import (
	"fmt"
	"os"

	"dropscope"
	"dropscope/internal/report"
	"dropscope/internal/rirstats"
)

func main() {
	cfg := dropscope.DefaultConfig()
	cfg.Scale = 256
	study, err := dropscope.NewStudy(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	t1 := study.Pipeline.Table1RPKIUptake()

	tbl := report.NewTable("RPKI uptake by DROP status", "Region", "Never", "Removed", "Present")
	for _, rir := range rirstats.AllRIRs {
		tbl.RawRow(string(rir),
			fmt.Sprintf("%5.1f%% (n=%d)", t1.Never[rir].Rate()*100, t1.Never[rir].Total),
			fmt.Sprintf("%5.1f%% (n=%d)", t1.Removed[rir].Rate()*100, t1.Removed[rir].Total),
			fmt.Sprintf("%5.1f%% (n=%d)", t1.Present[rir].Rate()*100, t1.Present[rir].Total))
	}
	never, removed, present := t1.Overall()
	tbl.RawRow("overall",
		fmt.Sprintf("%5.1f%%", never.Rate()*100),
		fmt.Sprintf("%5.1f%%", removed.Rate()*100),
		fmt.Sprintf("%5.1f%%", present.Rate()*100))
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println()
	if removed.Rate() > never.Rate() && present.Rate() < never.Rate() {
		fmt.Println("finding holds: removal from DROP correlates with ABOVE-baseline signing,")
		fmt.Println("while prefixes still listed sign BELOW baseline — remediation drives RPKI uptake.")
	} else {
		fmt.Println("warning: the paper's ordering (removed > never > present) did not emerge")
	}
	tot := t1.RemovedSignedDifferentASN + t1.RemovedSignedSameASN + t1.RemovedSignedUnrouted
	if tot > 0 {
		fmt.Printf("\nof removed+signed prefixes: %d/%d signed by a different ASN than the\n",
			t1.RemovedSignedDifferentASN, tot)
		fmt.Println("listing-time origin — consistent with owners reclaiming hijacked space.")
	}
}
